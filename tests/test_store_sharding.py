"""Tests for the sharded, tiered result store (layout v2).

Covers the fabric-era store features layered onto :class:`ResultStore`:
fingerprint-prefix sharding with transparent migration of flat v1 trees,
the warm in-memory LRU tier and its hit counters, size-bounded eviction
(``gc``), temp-debris compaction, the stats summary, and cross-tenant
envelope sharing through ``results_root``.  The golden-envelope guarantee —
stored files are plain v1 ``RunResult`` JSON, bytes untouched by migration —
is asserted explicitly.
"""

import json

import pytest

from repro.api import RunSpec, run, spec_fingerprint
from repro.api.store import (
    DEFAULT_SHARD_DEPTH,
    STORE_LAYOUT_VERSION,
    ResultStore,
)

SCHEDULE_SPEC = {
    "kind": "schedule",
    "workload": {"layers": ["3_4_8_16_1"]},
    "scheduler": {"name": "random", "options": {"num_valid": 2, "max_attempts": 500}},
}


@pytest.fixture(scope="module")
def envelope():
    return run(RunSpec.from_dict(SCHEDULE_SPEC))


class TestShardedLayout:
    def test_results_are_sharded_by_fingerprint_prefix(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store")
        fingerprint = spec_fingerprint(envelope.spec)
        path = store.put(envelope)
        assert path == store.result_path(fingerprint)
        assert path.parent.name == fingerprint[:DEFAULT_SHARD_DEPTH]
        assert path.parent.parent == store.results_dir

    def test_meta_file_records_layout(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store", shard_depth=3)
        store.put(envelope)
        meta = json.loads((tmp_path / "store" / "store.json").read_text())
        assert meta == {"layout_version": STORE_LAYOUT_VERSION, "shard_depth": 3}

    def test_on_disk_meta_wins_over_constructor_argument(self, tmp_path, envelope):
        first = ResultStore(tmp_path / "store", shard_depth=1)
        first.put(envelope)
        # A second opener asking for a different depth must follow the disk —
        # every process sharing one results tree has to shard identically.
        second = ResultStore(tmp_path / "store", shard_depth=4)
        assert second.shard_depth == 1
        assert second.load(spec_fingerprint(envelope.spec)) is not None

    def test_shard_depth_zero_keeps_a_flat_layout(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store", shard_depth=0)
        path = store.put(envelope)
        assert path.parent == store.results_dir

    def test_invalid_shard_depth_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store", shard_depth=9).shard_depth


class TestFlatV1Migration:
    def make_flat_store(self, root, envelope):
        """Lay out a pre-fabric (flat v1) store by hand: no meta, loose files."""
        fingerprint = spec_fingerprint(envelope.spec)
        results = root / "results"
        results.mkdir(parents=True)
        (results / f"{fingerprint}.json").write_text(envelope.to_json())
        return fingerprint

    def test_flat_files_migrate_on_first_open(self, tmp_path, envelope):
        fingerprint = self.make_flat_store(tmp_path / "store", envelope)
        flat_bytes = (tmp_path / "store" / "results" / f"{fingerprint}.json").read_bytes()
        store = ResultStore(tmp_path / "store")
        loaded = store.get(RunSpec.from_dict(SCHEDULE_SPEC))
        assert loaded is not None and store.stats.hits == 1
        # The file moved into its shard — and its bytes are untouched, so
        # golden v1 envelopes survive the migration verbatim.
        assert not (tmp_path / "store" / "results" / f"{fingerprint}.json").exists()
        assert store.result_path(fingerprint).read_bytes() == flat_bytes

    def test_migration_is_idempotent(self, tmp_path, envelope):
        fingerprint = self.make_flat_store(tmp_path / "store", envelope)
        assert ResultStore(tmp_path / "store").load(fingerprint) is not None
        assert ResultStore(tmp_path / "store").load(fingerprint) is not None

    def test_store_hit_semantics_survive_migration(self, tmp_path, envelope):
        self.make_flat_store(tmp_path / "store", envelope)
        store = ResultStore(tmp_path / "store")
        hit = store.get(RunSpec.from_dict(SCHEDULE_SPEC))
        assert hit.to_dict() == envelope.to_dict()
        assert (store.stats.hits, store.stats.misses) == (1, 0)


class TestWarmTier:
    def test_second_get_is_a_warm_hit(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store")
        store.put(envelope)
        reader = ResultStore(tmp_path / "store")  # cold instance
        spec = RunSpec.from_dict(SCHEDULE_SPEC)
        reader.get(spec)
        reader.get(spec)
        assert reader.stats.disk_hits == 1
        assert reader.stats.warm_hits == 1
        assert reader.stats.hits == 2  # the pre-fabric total still adds up

    def test_warm_capacity_zero_disables_the_tier(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store", warm_capacity=0)
        store.put(envelope)
        spec = RunSpec.from_dict(SCHEDULE_SPEC)
        store.get(spec)
        store.get(spec)
        assert store.stats.warm_hits == 0
        assert store.stats.disk_hits == 2

    def test_warm_tier_evicts_least_recently_used(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store", warm_capacity=2)
        for name in ("aa", "bb", "cc"):
            store._warm_put(name * 20, envelope)
        assert "aa" * 20 not in store._warm
        assert {"bb" * 20, "cc" * 20} <= set(store._warm)


class TestGcAndCompaction:
    def fill(self, store, envelope, count):
        """Store ``count`` distinct-fingerprint copies with increasing mtimes."""
        import os
        import time

        fingerprints = []
        for index in range(count):
            fingerprint = f"{index:02d}" + "e" * 38
            path = store.put(envelope, fingerprint)
            stamp = time.time() - (count - index) * 100
            os.utime(path, (stamp, stamp))
            fingerprints.append(fingerprint)
        return fingerprints

    def test_gc_evicts_oldest_first_until_under_bound(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store")
        fingerprints = self.fill(store, envelope, 4)
        size = store.result_path(fingerprints[0]).stat().st_size
        report = store.gc(max_bytes=2 * size)
        assert report.evicted == fingerprints[:2]  # oldest mtimes go first
        assert not store.result_path(fingerprints[0]).exists()
        assert store.result_path(fingerprints[3]).exists()
        assert store.stats.evictions == 2
        assert store.load(fingerprints[0]) is None  # warm tier dropped too

    def test_gc_dry_run_touches_nothing(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store")
        fingerprints = self.fill(store, envelope, 3)
        report = store.gc(max_bytes=0, dry_run=True)
        assert len(report.evicted) == 3 and report.dry_run is True
        assert all(store.result_path(f).exists() for f in fingerprints)
        assert store.stats.evictions == 0

    def test_put_with_max_bytes_evicts_opportunistically(self, tmp_path, envelope):
        probe = ResultStore(tmp_path / "probe")
        size = probe.put(envelope).stat().st_size
        store = ResultStore(tmp_path / "store", max_bytes=2 * size)
        self.fill(store, envelope, 4)
        assert len(store) <= 2

    def test_compact_sweeps_stale_temp_files_and_empty_shards(self, tmp_path, envelope):
        import os
        import time

        store = ResultStore(tmp_path / "store")
        [fingerprint] = self.fill(store, envelope, 1)
        shard = store.result_path(fingerprint).parent
        debris = shard / ".crashed-writer.tmp"
        debris.write_text("{")
        old = time.time() - 3600
        os.utime(debris, (old, old))
        fresh = shard / ".inflight-writer.tmp"
        fresh.write_text("{")
        empty = store.results_dir / "zz"
        empty.mkdir()

        report = store.compact()
        assert report.removed_temp_files == 1
        assert report.removed_empty_shards == 1
        assert not debris.exists()
        assert fresh.exists()  # young temp files may be in-flight writes
        assert not empty.exists()
        assert store.result_path(fingerprint).exists()

    def test_stats_summary_snapshot(self, tmp_path, envelope):
        store = ResultStore(tmp_path / "store")
        store.put(envelope)
        store.get(RunSpec.from_dict(SCHEDULE_SPEC))
        summary = store.stats_summary()
        assert summary["entries"] == 1
        assert summary["bytes"] > 0
        assert summary["layout_version"] == STORE_LAYOUT_VERSION
        assert summary["shard_depth"] == DEFAULT_SHARD_DEPTH
        assert sum(summary["shards"].values()) == 1
        assert summary["counters"]["warm_hits"] == 1  # put() warmed the tier
        assert summary["warm_tier"]["entries"] == 1


class TestSharedResultsRoot:
    def test_envelopes_shared_records_private(self, tmp_path, envelope):
        shared = tmp_path / "shared"
        acme = ResultStore(tmp_path / "acme", "acme-", results_root=shared)
        globex = ResultStore(tmp_path / "globex", "globex-", results_root=shared)
        spec = RunSpec.from_dict(SCHEDULE_SPEC)

        acme.put(envelope)
        # The other tenant's store sees the envelope without a fresh solve...
        assert globex.get(spec) is not None
        assert globex.stats.hits == 1
        assert acme.result_path(spec_fingerprint(spec)) == globex.result_path(
            spec_fingerprint(spec)
        )
        # ...while job records stay in each tenant's private subtree.
        acme_id = acme.allocate_job_id(spec_fingerprint(spec))
        acme.record_job({"job_id": acme_id, "state": "done"})
        assert globex.load_jobs() == []
        assert acme.load_job(acme_id) is not None
        assert (tmp_path / "acme" / "jobs").is_dir()
        assert not (tmp_path / "globex" / "jobs").is_dir()

    def test_results_root_defaults_to_root(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.results_root == store.root
        assert store.results_dir == tmp_path / "store" / "results"
