"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works on environments whose setuptools/pip cannot
build PEP 660 editable wheels (e.g. offline machines without the ``wheel``
package).
"""

from setuptools import setup

setup()
