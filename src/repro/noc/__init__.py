"""Transaction-level NoC simulator (the second evaluation platform).

The paper augments Timeloop's analytical PE model with a cycle-exact
SystemC mesh (Matchlib routers + DRAMSim2).  This subpackage provides the
Python substitute documented in DESIGN.md: a discrete-event,
transaction-level 2-D mesh with

* X-Y (dimension-ordered) routing,
* per-link serialisation and contention (flit-granularity occupancy),
* multicast trees for weight/input distribution and spatial reduction for
  partial sums,
* a bandwidth/latency DRAM model,
* double-buffered overlap of compute, NoC transfers and DRAM refills.

The simulator walks the outer (NoC-facing) loop nest of a mapping round by
round, injects the packets each round requires, and reports the resulting
makespan.  It is deliberately more communication-sensitive than the
analytical model — exactly the property the paper relies on in Fig. 10.
"""

from repro.noc.packet import Packet, TrafficDirection
from repro.noc.mesh import MeshNetwork
from repro.noc.dram import DramModel
from repro.noc.traffic import TrafficGenerator, TransferRound
from repro.noc.simulator import NoCSimulator, NoCResult

__all__ = [
    "Packet",
    "TrafficDirection",
    "MeshNetwork",
    "DramModel",
    "TrafficGenerator",
    "TransferRound",
    "NoCSimulator",
    "NoCResult",
]
