"""Tests for the experiment harness, reporting helpers and figure generators.

The full sweeps are exercised by the benchmark harness; here we test the
machinery on tiny inputs so the unit suite stays fast.
"""

import pytest

from repro.api import (
    ComparisonConfig,
    LayerComparison,
    SpeedupSummary,
    compare_on_layer,
    compare_on_network,
    geometric_mean,
)
from repro.arch import simba_like
from repro.experiments.figures import (
    fig1_latency_histogram,
    fig3_permutation_sweep,
    fig4_spatial_sweep,
)
from repro.experiments.reporting import format_speedup_rows, format_table
from repro.workloads import Layer

ARCH = simba_like()


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_ignores_invalid_entries(self):
        assert geometric_mean([4.0, float("inf"), 0.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestComparisonDataclasses:
    def test_speedups(self):
        comparison = LayerComparison(
            layer="x", random_value=100.0, hybrid_value=50.0, cosa_value=20.0
        )
        assert comparison.hybrid_speedup == pytest.approx(2.0)
        assert comparison.cosa_speedup == pytest.approx(5.0)

    def test_summary_geomeans(self):
        summary = SpeedupSummary(
            label="net",
            comparisons=[
                LayerComparison("a", 100.0, 50.0, 25.0),
                LayerComparison("b", 100.0, 50.0, 100.0),
            ],
        )
        assert summary.hybrid_geomean == pytest.approx(2.0)
        assert summary.cosa_geomean == pytest.approx(2.0)
        assert summary.cosa_vs_hybrid == pytest.approx(1.0)

    def test_zero_values_give_zero_speedup(self):
        comparison = LayerComparison("x", 10.0, 0.0, 0.0)
        assert comparison.hybrid_speedup == 0.0
        assert comparison.cosa_speedup == 0.0

    def test_config_validates_platform(self):
        with pytest.raises(ValueError):
            ComparisonConfig(accelerator=ARCH, platform="fpga")


class TestHarnessEndToEnd:
    def test_compare_on_layer_small(self):
        config = ComparisonConfig(
            accelerator=ARCH,
            hybrid_threads=1,
            hybrid_termination=8,
            hybrid_max_evaluations=40,
            random_valid=2,
        )
        comparison = compare_on_layer(Layer(r=3, p=4, c=8, k=16, name="tiny"), config)
        assert comparison.random_value > 0
        assert comparison.hybrid_value > 0
        assert comparison.cosa_value > 0
        assert comparison.cosa_value < float("inf")

    def test_compare_on_network_groups_layers(self):
        config = ComparisonConfig(
            accelerator=ARCH,
            hybrid_threads=1,
            hybrid_termination=8,
            hybrid_max_evaluations=30,
            random_valid=1,
        )
        layers = [Layer(c=8, k=8, name="a"), Layer(p=4, k=16, name="b")]
        summary = compare_on_network("tiny-net", layers, config)
        assert summary.label == "tiny-net"
        assert len(summary.comparisons) == 2
        assert summary.cosa_geomean > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["xy", 3.14159]], title="T")
        assert "T" in text
        assert "3.14" in text
        lines = text.splitlines()
        # title, title underline, header, separator and two data rows.
        assert len(lines) == 6

    def test_format_speedup_rows(self):
        summary = SpeedupSummary("net", [LayerComparison("a", 10.0, 5.0, 2.0)])
        text = format_speedup_rows([summary], title="Speedups")
        assert "net" in text
        assert "Speedups" in text


class TestFigureGenerators:
    def test_fig1_small_sample(self):
        result = fig1_latency_histogram(num_samples=60, seed=1)
        assert result.num_sampled == 60
        assert 0 <= result.num_valid <= 60
        assert len(result.bin_counts) == 4
        assert sum(result.bin_counts) == result.num_valid

    def test_fig3_produces_all_six_orders(self):
        points = fig3_permutation_sweep()
        assert sorted(p.order for p in points) == sorted(
            ["CKP", "CPK", "KCP", "KPC", "PCK", "PKC"]
        )
        assert all(p.latency_mcycles > 0 for p in points)

    def test_fig4_points_are_valid_and_sorted(self):
        points = fig4_spatial_sweep()
        assert len(points) >= 10
        latencies = [p.latency_mcycles for p in points]
        assert latencies == sorted(latencies, reverse=True)
        for point in points:
            product = 1
            for factor in point.spatial.values():
                product *= factor
            assert product <= simba_like().num_pes


class TestHarnessDeprecationShim:
    """The old repro.experiments.harness location keeps working, with a warning.

    The suite runs with ``-W error::DeprecationWarning`` (see pyproject), so
    these tests opt in explicitly via ``pytest.warns`` / ``catch_warnings``;
    any *other* test tripping the shim fails loudly instead.
    """

    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        # The shim warns once per symbol per process; reset so these tests
        # are order-independent.
        from repro.experiments import harness

        harness._WARNED.clear()
        yield
        harness._WARNED.clear()

    def test_classes_reexported(self):
        from repro.experiments import harness

        assert harness.ComparisonConfig is ComparisonConfig
        assert harness.SpeedupSummary is SpeedupSummary
        assert harness.geometric_mean is geometric_mean

    def test_compare_on_layer_warns_and_delegates(self):
        from repro.experiments.harness import compare_on_layer as legacy_compare_on_layer

        config = ComparisonConfig(
            accelerator=ARCH,
            random_valid=2,
            hybrid_threads=1,
            hybrid_termination=8,
            hybrid_max_evaluations=60,
        )
        layer = Layer(r=1, p=2, c=4, k=4, name="shim-tiny")
        with pytest.warns(DeprecationWarning, match="repro.api"):
            comparison = legacy_compare_on_layer(layer, config)
        assert isinstance(comparison, LayerComparison)
        assert comparison.layer == "shim-tiny"

    def test_warns_exactly_once_per_symbol(self):
        import warnings

        from repro.experiments.harness import (
            compare_on_layer as legacy_compare_on_layer,
            compare_on_network as legacy_compare_on_network,
        )

        config = ComparisonConfig(
            accelerator=ARCH,
            random_valid=1,
            hybrid_threads=1,
            hybrid_termination=8,
            hybrid_max_evaluations=30,
        )
        layer = Layer(r=1, p=2, c=4, k=4, name="shim-once")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy_compare_on_layer(layer, config)
            legacy_compare_on_layer(layer, config)  # second call: no new warning
            legacy_compare_on_network("net", [layer], config)
        messages = [str(w.message) for w in caught if w.category is DeprecationWarning]
        assert len(messages) == 2  # one per symbol, not per call
        assert any("compare_on_layer" in m for m in messages)
        assert any("compare_on_network" in m for m in messages)
