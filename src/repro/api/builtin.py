"""Built-in registrations for the experiment axes.

Importing :mod:`repro.api` loads this module once, populating the
registries with everything the repository ships: the four spatial /
GPU architecture presets, the evaluated workloads (the paper's four DNNs
plus the transformer-block presets), the six schedulers (CoSA, the four
search baselines, CoSA-GPU), the two evaluation platforms, the
tensor-problem factories (conv, matmul, depthwise/grouped conv,
attention, softmax, bn-relu) and the fusion-group presets (attention
chains, conv-bn-relu, group-aware transformer blocks).  Heavy
dependencies (scipy via the MIP backend, the NoC simulator) are imported
inside the factories, so ``import repro.api`` stays light.

Plugins follow the same pattern from any module::

    from repro.api import register_scheduler

    @register_scheduler("my-tuner", description="...")
    def _make_my_tuner(accelerator, *, seed=0, **options):
        return MyTuner(accelerator, seed=seed, **options)

Scheduler factories receive the resolved accelerator plus the spec's
options; :func:`repro.api.runner.run` additionally offers the engine-level
search knobs (``seed``, ``eval_batch_size``, ``time_budget_seconds``) to
factories whose signature accepts them.
"""

from __future__ import annotations

from repro.api.registry import (
    architectures,
    fusion_groups,
    platforms,
    problems,
    schedulers,
    workloads,
)

# ----------------------------------------------------------------- schedulers


@schedulers.register("cosa", description="one-shot constrained-optimization (MIP) scheduler")
def _make_cosa(accelerator, *, weights=None, backend=None, capacity_fraction=None):
    from repro.core.scheduler import CoSAScheduler

    return CoSAScheduler(
        accelerator, weights=weights, backend=backend, capacity_fraction=capacity_fraction
    )


@schedulers.register("random", description="best of N random valid mappings (Random 5x baseline)")
def _make_random(accelerator, **options):
    from repro.baselines.random_search import RandomScheduler

    return RandomScheduler(accelerator, **options)


@schedulers.register("hybrid", description="Timeloop-style hybrid random/pruned mapper")
def _make_hybrid(accelerator, **options):
    from repro.baselines.timeloop_hybrid import TimeloopHybridScheduler

    return TimeloopHybridScheduler(accelerator, **options)


@schedulers.register("tvm", description="TVM-like iterative feedback-driven tuner")
def _make_tvm(accelerator, **options):
    from repro.baselines.tvm_like import TVMLikeTuner

    return TVMLikeTuner(accelerator, **options)


@schedulers.register(
    "local-search",
    description="move-based local search with delta evaluation and DDFW-style weights",
)
def _make_local_search(accelerator, **options):
    from repro.baselines.local_search import LocalSearchScheduler

    return LocalSearchScheduler(accelerator, **options)


@schedulers.register(
    "gpu",
    description="CoSA-GPU: the Sec. V-D GPU instantiation (pair with a 'gpu-*' architecture)",
)
def _make_gpu(accelerator, *, weights=None, backend=None):
    # CoSA-GPU derives its target from a GPUSpec (thread blocks as spatial
    # levels, shared memory / registers as buffers), so it builds its own
    # accelerator; run() verifies it matches the spec's architecture pick.
    from repro.core.gpu import CoSAGPUScheduler

    return CoSAGPUScheduler(weights=weights, backend=backend)


# -------------------------------------------------------------- architectures


@architectures.register("baseline-4x4", description="Simba-like baseline of Table V (4x4 PE mesh)")
def _make_baseline():
    from repro.arch.presets import simba_like

    return simba_like()


@architectures.register("pe-8x8", description="Fig. 9a variant: 8x8 PEs, 2x bandwidth")
def _make_pe_8x8():
    from repro.arch.presets import pe_array_8x8

    return pe_array_8x8()


@architectures.register("large-buffers", description="Fig. 9b variant: enlarged buffers")
def _make_large_buffers():
    from repro.arch.presets import large_buffers

    return large_buffers()


@architectures.register("gpu-k80", description="K80-like GPU target of Sec. V-D")
def _make_gpu_k80():
    from repro.arch.presets import gpu_k80

    return gpu_k80()


# ------------------------------------------------------------------ platforms


@platforms.register("timeloop", description="analytical Timeloop-style cost model")
def _make_timeloop_platform(accelerator, metric: str = "latency"):
    from repro.model.cost import CostModel

    model = CostModel(accelerator)

    def evaluate(mapping) -> float:
        if mapping is None:
            return float("inf")
        cost = model.evaluate(mapping)
        if not cost.valid:
            return float("inf")
        if metric == "energy":
            return cost.energy
        if metric == "edp":
            return cost.edp
        return cost.latency

    return evaluate


@platforms.register("noc", description="transaction-level NoC simulator (always reports latency)")
def _make_noc_platform(accelerator, metric: str = "latency"):
    # The simulator models time, not energy: whatever ``metric`` the spec
    # requests (it steers the search baselines), the platform value is the
    # simulated latency — matching the paper's Fig. 10 methodology.
    from repro.model.cost import CostModel
    from repro.noc.simulator import NoCSimulator

    model = CostModel(accelerator)
    simulator = NoCSimulator(accelerator)

    def evaluate(mapping) -> float:
        if mapping is None:
            return float("inf")
        if not model.evaluate(mapping).valid:
            return float("inf")
        return simulator.simulate(mapping).latency

    return evaluate


# ------------------------------------------------------------------ workloads


@workloads.register("alexnet", description="AlexNet (8 unique layers)")
def _make_alexnet(batch: int = 1):
    from repro.workloads.networks import alexnet_layers

    return alexnet_layers(batch)


@workloads.register("resnet50", description="ResNet-50 (23 unique layers)")
def _make_resnet50(batch: int = 1):
    from repro.workloads.networks import resnet50_layers

    return resnet50_layers(batch)


@workloads.register("resnext50", description="ResNeXt-50 32x4d (25 unique layers)")
def _make_resnext50(batch: int = 1):
    from repro.workloads.networks import resnext50_layers

    return resnext50_layers(batch)


@workloads.register("deepbench", description="DeepBench convolution kernels (9 layers)")
def _make_deepbench(batch: int = 1):
    from repro.workloads.networks import deepbench_layers

    return deepbench_layers(batch)


@workloads.register(
    "bert-base-block",
    description="one BERT-base encoder block (matmul + attention problems, seq 128)",
)
def _make_bert_base_block(batch: int = 1):
    from repro.workloads.networks import bert_base_block_layers

    return bert_base_block_layers(batch)


@workloads.register(
    "gpt2-small-block",
    description="one GPT-2-small decoder block (matmul + attention problems, seq 1024)",
)
def _make_gpt2_small_block(batch: int = 1):
    from repro.workloads.networks import gpt2_small_block_layers

    return gpt2_small_block_layers(batch)


# ------------------------------------------------------------------- problems


@problems.register("conv", description="7-D convolution (R/S/P/Q/C/K bounds + stride)")
def _make_conv_problem(
    batch: int = 1,
    *,
    r: int,
    p: int,
    c: int,
    k: int,
    s: int | None = None,
    q: int | None = None,
    stride: int = 1,
    name: str = "",
):
    from repro.workloads.layer import Layer

    return Layer(
        r=r, s=s if s is not None else r,
        p=p, q=q if q is not None else p,
        c=c, k=k, n=batch, stride=stride, name=name,
    )


@problems.register("matmul", description="matrix multiplication C[m,n] = A[m,k] @ B[k,n]")
def _make_matmul_problem(batch: int = 1, *, m: int, n: int, k: int, name: str = ""):
    from repro.workloads.problem import matmul

    return matmul(m=m, n=n, k=k, batch=batch, name=name)


@problems.register("depthwise-conv", description="depthwise convolution (one filter per channel)")
def _make_depthwise_problem(
    batch: int = 1, *, r: int, p: int, c: int, stride: int = 1, name: str = ""
):
    from repro.workloads.problem import depthwise_conv

    return depthwise_conv(r=r, p=p, c=c, stride=stride, n=batch, name=name)


@problems.register("grouped-conv", description="grouped convolution (G independent C-to-K convs)")
def _make_grouped_problem(
    batch: int = 1, *, r: int, p: int, c: int, k: int, groups: int, stride: int = 1, name: str = ""
):
    from repro.workloads.problem import grouped_conv

    return grouped_conv(r=r, p=p, c=c, k=k, groups=groups, stride=stride, n=batch, name=name)


@problems.register("attention-qk", description="attention score contraction S = Q @ K^T")
def _make_attention_qk_problem(
    batch: int = 1, *, seq: int, heads: int, head_dim: int, kv_seq: int | None = None, name: str = ""
):
    from repro.workloads.problem import attention_qk

    return attention_qk(
        seq=seq, heads=heads, head_dim=head_dim, batch=batch, kv_seq=kv_seq, name=name
    )


@problems.register("attention-av", description="attention context contraction O = S @ V")
def _make_attention_av_problem(
    batch: int = 1, *, seq: int, heads: int, head_dim: int, kv_seq: int | None = None, name: str = ""
):
    from repro.workloads.problem import attention_av

    return attention_av(
        seq=seq, heads=heads, head_dim=head_dim, batch=batch, kv_seq=kv_seq, name=name
    )


@problems.register("softmax", description="row-wise softmax-scale over attention scores")
def _make_softmax_problem(
    batch: int = 1, *, seq: int, heads: int, kv_seq: int | None = None, name: str = ""
):
    from repro.workloads.problem import softmax

    return softmax(seq=seq, heads=heads, batch=batch, kv_seq=kv_seq, name=name)


@problems.register("bn-relu", description="fused batch-norm + ReLU over conv activations")
def _make_bn_relu_problem(
    batch: int = 1, *, p: int, k: int, q: int | None = None, name: str = ""
):
    from repro.workloads.problem import bn_relu

    return bn_relu(p=p, k=k, n=batch, q=q, name=name)


# -------------------------------------------------------------- fusion groups


@fusion_groups.register(
    "attention-block",
    description="fused QK -> softmax-scale -> AV chain (score matrices stay on-chip)",
)
def _make_attention_block_group(
    batch: int = 1, *, seq: int, heads: int, head_dim: int, kv_seq: int | None = None
):
    from repro.fusion.presets import attention_block

    return attention_block(
        seq=seq, heads=heads, head_dim=head_dim, batch=batch, kv_seq=kv_seq
    )


@fusion_groups.register(
    "conv-bn-relu",
    description="convolution -> fused batch-norm/ReLU (activations stay on-chip)",
)
def _make_conv_bn_relu_group(
    batch: int = 1, *, r: int, p: int, c: int, k: int, stride: int = 1
):
    from repro.fusion.presets import conv_bn_relu

    return conv_bn_relu(r=r, p=p, c=c, k=k, stride=stride, batch=batch)


@fusion_groups.register(
    "bert-base-block",
    description="group-aware BERT-base block: fused attention chain + singleton matmuls",
)
def _make_bert_base_block_plan(batch: int = 1, *, seq: int = 128):
    from repro.fusion.presets import bert_base_block_plan

    return bert_base_block_plan(batch=batch, seq=seq)


@fusion_groups.register(
    "gpt2-small-block",
    description="group-aware GPT-2-small block: fused attention chain + singleton matmuls",
)
def _make_gpt2_small_block_plan(batch: int = 1, *, seq: int = 1024):
    from repro.fusion.presets import gpt2_small_block_plan

    return gpt2_small_block_plan(batch=batch, seq=seq)
