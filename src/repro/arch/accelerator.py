"""Top-level accelerator specification.

An :class:`Accelerator` bundles everything the scheduler and the evaluation
platforms need to know about the hardware: the memory hierarchy, the PE
array, the NoC, the datatype precisions and the energy table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.energy import EnergyTable
from repro.arch.memory import MemoryHierarchy, MemoryLevel
from repro.arch.spatial import NoCSpec, PEArraySpec
from repro.workloads.layer import TensorKind


@dataclass(frozen=True)
class Precision:
    """Datatype width in bytes for each tensor.

    The paper uses 8-bit weights and input activations and 24-bit partial
    sums, i.e. ``weight=1, input=1, output=3``.
    """

    weight_bytes: int = 1
    input_bytes: int = 1
    output_bytes: int = 3

    def __post_init__(self) -> None:
        for name in ("weight_bytes", "input_bytes", "output_bytes"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    def bytes_for(self, tensor: TensorKind) -> int:
        """Bytes per element of ``tensor``."""
        if tensor is TensorKind.WEIGHT:
            return self.weight_bytes
        if tensor is TensorKind.INPUT:
            return self.input_bytes
        return self.output_bytes


@dataclass(frozen=True)
class Accelerator:
    """Complete spatial accelerator description.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"simba-4x4"``).
    hierarchy:
        The memory hierarchy, innermost level first.
    pe_array:
        PE mesh geometry and arithmetic capability.
    noc:
        On-chip network parameters.
    precision:
        Per-tensor datatype widths.
    energy:
        Per-access energy table.
    """

    name: str
    hierarchy: MemoryHierarchy
    pe_array: PEArraySpec = field(default_factory=PEArraySpec)
    noc: NoCSpec = field(default_factory=NoCSpec)
    precision: Precision = field(default_factory=Precision)
    energy: EnergyTable = field(default_factory=EnergyTable)

    def __post_init__(self) -> None:
        # The hierarchy's PE-distributing fanout should agree with the array size.
        fanouts = [level.spatial_fanout for level in self.hierarchy if level.spatial_fanout > 1]
        if self.pe_array.num_pes not in fanouts and self.pe_array.num_pes > 1:
            raise ValueError(
                f"no memory level has a spatial fanout equal to the PE count "
                f"({self.pe_array.num_pes}); fanouts present: {fanouts}"
            )

    # ------------------------------------------------------------------ sizes
    @property
    def num_pes(self) -> int:
        """Number of processing elements in the array."""
        return self.pe_array.num_pes

    @property
    def num_memory_levels(self) -> int:
        """Number of memory levels including DRAM."""
        return len(self.hierarchy)

    @property
    def peak_macs_per_cycle(self) -> float:
        """Aggregate arithmetic throughput of the accelerator."""
        return self.pe_array.peak_macs_per_cycle

    def level_capacity_words(self, index: int, tensor: TensorKind) -> float:
        """Capacity of level ``index`` expressed in elements of ``tensor``.

        Returns ``inf`` for unbounded levels.
        """
        level = self.hierarchy[index]
        if level.is_unbounded:
            return float("inf")
        return level.capacity_bytes / self.precision.bytes_for(tensor)

    def tensor_bytes(self, tensor: TensorKind, elements: float) -> float:
        """Size in bytes of ``elements`` elements of ``tensor``."""
        return elements * self.precision.bytes_for(tensor)

    def pe_level_index(self) -> int:
        """Index of the memory level that distributes tiles across the PE array.

        This is the level whose fanout equals the PE count (the global buffer
        in the baseline architecture); NoC traffic is measured at this
        boundary.  The search runs from the outermost level inward so that a
        per-PE level that happens to have the same fanout (e.g. 64 MAC lanes
        in a 64-PE configuration) is never mistaken for the PE-array level.
        """
        for i in reversed(range(len(self.hierarchy))):
            level = self.hierarchy[i]
            if level.spatial_fanout == self.num_pes and self.num_pes > 1:
                return i
        # Single-PE degenerate configuration: use the outermost on-chip level.
        return len(self.hierarchy) - 2

    def fingerprint(self) -> str:
        """Deterministic content digest of the full architecture description.

        Covers everything a scheduler's output can depend on: the memory
        hierarchy (capacities, tensor bindings, fanouts, bandwidths), the PE
        array, the NoC parameters, the datatype precisions and the energy
        table.  Two accelerators with equal fingerprints are interchangeable
        for scheduling, which is what lets the mapping cache
        (:mod:`repro.engine.cache`) key entries by architecture content
        instead of by preset name.
        """
        from repro.digest import stable_digest

        payload = {
            "hierarchy": [
                {
                    "name": level.name,
                    "capacity_bytes": level.capacity_bytes,
                    "tensors": sorted(t.name for t in level.tensors),
                    "spatial_fanout": level.spatial_fanout,
                    "bandwidth": level.bandwidth_words_per_cycle,
                }
                for level in self.hierarchy
            ],
            "pe_array": {
                "rows": self.pe_array.rows,
                "cols": self.pe_array.cols,
                "macs_per_pe": self.pe_array.macs_per_pe,
                "mac_throughput": self.pe_array.mac_throughput,
            },
            "noc": {
                "flit_bits": self.noc.flit_bits,
                "link_bandwidth_flits": self.noc.link_bandwidth_flits,
                "router_latency": self.noc.router_latency,
                "multicast": self.noc.multicast,
                "routing": self.noc.routing,
                "dram_bandwidth": self.noc.dram_bandwidth_bytes_per_cycle,
                "dram_latency": self.noc.dram_latency_cycles,
            },
            "precision": {
                "weight": self.precision.weight_bytes,
                "input": self.precision.input_bytes,
                "output": self.precision.output_bytes,
            },
            "energy": {
                "levels": dict(sorted(self.energy.level_energy_pj.items())),
                "mac": self.energy.mac_energy_pj,
                "noc_hop": self.energy.noc_hop_energy_pj,
                "default_sram": self.energy.default_sram_pj,
            },
        }
        return stable_digest(payload)

    def describe(self) -> str:
        """Human-readable multi-line summary (architecture 'spec sheet')."""
        lines = [
            f"Accelerator {self.name}",
            f"  PE array: {self.pe_array.rows}x{self.pe_array.cols} PEs, "
            f"{self.pe_array.macs_per_pe} MACs/PE",
            f"  NoC: {self.noc.flit_bits}b flits, {self.noc.routing} routing, "
            f"multicast={self.noc.multicast}",
            "  Memory hierarchy:",
        ]
        lines.extend("    " + line for line in self.hierarchy.describe().splitlines())
        return "\n".join(lines)
