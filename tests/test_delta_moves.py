"""Property tests: delta evaluation under random move sequences.

Hand-rolled generators (seeded ``random.Random``, no external property
testing dependency — the coverage CI job installs none) drive long random
walks of factor moves, spatial flips and permutation swaps over every
built-in tensor problem, asserting after **every committed move** that the
delta-accumulated result equals

* a fresh full re-evaluation of the same state (raw values included, so
  invalid states are checked too),
* the scalar :class:`~repro.model.cost.CostModel` oracle on the
  materialized mapping, with ``==`` (bit-for-bit, no tolerance),
* and, when numpy is present, the batched evaluator.

Plus the mechanics underneath: ``preview`` leaves state and caches
untouched, ``apply``/``undo`` round-trips restore both, and
``MappingState`` materializes exactly the mapping its seed draw would.
"""

import random

import pytest

from repro.arch import architecture_presets, simba_like
from repro.mapping import MapSpace, mapping_to_dict
from repro.mapping.moves import FactorMove, MappingState, PermutationSwap, propose_move
from repro.model import CostModel, HAVE_NUMPY
from repro.model.delta import DeltaEvaluator
from repro.workloads import (
    attention_av,
    attention_qk,
    depthwise_conv,
    grouped_conv,
    layer_from_name,
    matmul,
)

ARCH = simba_like()

if HAVE_NUMPY:
    from repro.model.batch import BatchCostModel, MappingBatch


def builtin_problem_layers():
    """One small layer per built-in tensor problem (all six)."""
    return [
        layer_from_name("3_7_64_64_1"),  # conv7
        matmul(m=8, n=16, k=32, name="delta_matmul"),
        depthwise_conv(r=3, p=8, c=16, name="delta_dw"),
        grouped_conv(r=3, p=8, c=4, k=4, groups=8, name="delta_gconv"),
        attention_qk(seq=16, heads=2, head_dim=8, name="delta_qk"),
        attention_av(seq=16, heads=2, head_dim=8, name="delta_av"),
    ]


def seeded_state(layer, arch, rng):
    """A state from one random draw plus the space's fanout table."""
    space = MapSpace(layer, arch)
    draws = space.sample_batch(1, rng)
    return space.initial_state(draws, 0), space.spatial_fanouts


def snapshot(state):
    """Deep-copied placement lists for exact-restoration assertions."""
    return (
        [[list(e) for e in level] for level in state.temporal],
        [[list(e) for e in level] for level in state.spatial],
    )


def assert_full_parity(result, state, arch, scalar):
    """One committed state: delta result vs fresh recompute vs the oracles."""
    # Fresh evaluator: full recompute of the identical state must be
    # bit-equal on raw values too (covers invalid states, which the masked
    # oracle comparison below cannot distinguish).
    fresh = DeltaEvaluator(state.clone(), arch).evaluate()
    assert result.valid == fresh.valid
    assert result.consistent == fresh.consistent
    assert result.raw_latency == fresh.raw_latency
    assert result.raw_energy == fresh.raw_energy
    assert result.raw_utilization == fresh.raw_utilization
    assert result.capacity_violation == fresh.capacity_violation
    assert result.spatial_violation == fresh.spatial_violation

    mapping = state.to_mapping()
    cost = scalar.evaluate(mapping)
    assert result.valid == cost.valid
    assert result.latency == cost.latency
    assert result.energy == cost.energy
    assert result.utilization == cost.utilization
    if cost.valid:
        assert result.edp == cost.edp

    if HAVE_NUMPY:
        batch = BatchCostModel(arch).evaluate_mappings([mapping])
        assert result.valid == bool(batch.valid[0])
        assert result.latency == batch.latency[0]
        assert result.energy == batch.energy[0]
        assert result.utilization == batch.utilization[0]


class TestDeltaMatchesFullReevaluation:
    def test_random_walks_on_every_builtin_problem(self):
        """Satellite: delta == full batch/scalar re-evaluation, bit-for-bit."""
        rng = random.Random(2026)
        for layer in builtin_problem_layers():
            scalar = CostModel(ARCH)
            state, fanouts = seeded_state(layer, ARCH, rng)
            evaluator = DeltaEvaluator(state, ARCH)
            assert_full_parity(evaluator.evaluate(), state, ARCH, scalar)
            committed = 0
            for _ in range(60):
                move = propose_move(state, fanouts, rng)
                if move is None:
                    break
                result, _token = evaluator.apply(move)
                committed += 1
                assert_full_parity(result, state, ARCH, scalar)
            assert committed >= 20, f"{layer.name}: walk froze too early"

    def test_random_walks_across_architecture_presets(self):
        rng = random.Random(7)
        layer = layer_from_name("3_14_32_64_1")
        for _, arch in sorted(architecture_presets().items()):
            scalar = CostModel(arch)
            state, fanouts = seeded_state(layer, arch, rng)
            evaluator = DeltaEvaluator(state, arch)
            for _ in range(25):
                move = propose_move(state, fanouts, rng)
                if move is None:
                    break
                result, _token = evaluator.apply(move)
                assert_full_parity(result, state, arch, scalar)

    def test_moves_conserve_consistency(self):
        """Factor products are conserved, so consistency never breaks."""
        rng = random.Random(13)
        for layer in builtin_problem_layers():
            state, fanouts = seeded_state(layer, ARCH, rng)
            evaluator = DeltaEvaluator(state, ARCH)
            for _ in range(40):
                move = propose_move(state, fanouts, rng)
                if move is None:
                    break
                result, _ = evaluator.apply(move)
                assert result.consistent
            assert state.to_mapping().is_consistent()


class TestPreviewAndUndo:
    def test_preview_leaves_state_and_caches_untouched(self):
        rng = random.Random(3)
        state, fanouts = seeded_state(layer_from_name("3_7_64_64_1"), ARCH, rng)
        evaluator = DeltaEvaluator(state, ARCH)
        before = evaluator.evaluate()
        for _ in range(30):
            move = propose_move(state, fanouts, rng)
            if move is None:
                break
            shape = snapshot(state)
            previewed = evaluator.preview(move)
            assert snapshot(state) == shape, "preview mutated the state"
            # The cached terms are still those of the un-moved state.
            after = evaluator.evaluate()
            assert after.raw_latency == before.raw_latency
            assert after.raw_energy == before.raw_energy
            # Committing the same move reproduces the preview exactly.
            committed, token = evaluator.apply(move)
            assert committed.valid == previewed.valid
            assert committed.raw_latency == previewed.raw_latency
            assert committed.raw_energy == previewed.raw_energy
            assert committed.raw_utilization == previewed.raw_utilization
            assert committed.capacity_violation == previewed.capacity_violation
            assert committed.spatial_violation == previewed.spatial_violation
            evaluator.undo(token)

    def test_apply_undo_restores_state_and_result(self):
        rng = random.Random(4)
        for layer in builtin_problem_layers():
            state, fanouts = seeded_state(layer, ARCH, rng)
            evaluator = DeltaEvaluator(state, ARCH)
            baseline = evaluator.evaluate()
            shape = snapshot(state)
            for _ in range(25):
                move = propose_move(state, fanouts, rng)
                if move is None:
                    break
                _, token = evaluator.apply(move)
                evaluator.undo(token)
                assert snapshot(state) == shape
                restored = evaluator.evaluate()
                assert restored.raw_latency == baseline.raw_latency
                assert restored.raw_energy == baseline.raw_energy
                assert restored.raw_utilization == baseline.raw_utilization

    def test_state_apply_undo_round_trips(self):
        rng = random.Random(5)
        state, fanouts = seeded_state(
            grouped_conv(r=3, p=8, c=4, k=4, groups=8, name="undo_gconv"), ARCH, rng
        )
        for _ in range(50):
            move = propose_move(state, fanouts, rng)
            if move is None:
                break
            shape = snapshot(state)
            record = state.apply(move)
            state.undo(record)
            assert snapshot(state) == shape


class TestMappingStateMechanics:
    def test_state_materializes_its_seed_draw(self):
        rng = random.Random(6)
        for layer in builtin_problem_layers():
            space = MapSpace(layer, ARCH)
            draws = space.sample_batch(8, rng)
            for index in range(len(draws)):
                state = space.initial_state(draws, index)
                assert mapping_to_dict(state.to_mapping()) == mapping_to_dict(
                    draws.materialize(index)
                )

    def test_from_mapping_round_trips(self):
        rng = random.Random(8)
        layer = layer_from_name("3_7_64_64_1")
        mapping = MapSpace(layer, ARCH).random_mapping(rng)
        state = MappingState.from_mapping(mapping)
        assert mapping_to_dict(state.to_mapping()) == mapping_to_dict(mapping)

    def test_spatial_flip_and_move_classification(self):
        flip = FactorMove(
            dim="C", factor=2, src_level=1, src_spatial=False, dst_level=1, dst_spatial=True
        )
        assert flip.is_spatial_flip
        assert flip.touches_temporal and flip.touches_spatial
        hop = FactorMove(
            dim="C", factor=2, src_level=0, src_spatial=False, dst_level=3, dst_spatial=False
        )
        assert not hop.is_spatial_flip
        assert hop.touches_temporal and not hop.touches_spatial

    def test_apply_rejects_bad_factor_and_missing_entry(self):
        rng = random.Random(9)
        state, _ = seeded_state(matmul(m=8, n=16, k=32, name="guard_mm"), ARCH, rng)
        # Find some placed entry, then ask for a factor that cannot divide it.
        level, spatial, entry = next(
            (lvl, sp, e)
            for sp, levels in ((False, state.temporal), (True, state.spatial))
            for lvl, loops in enumerate(levels)
            for e in loops
        )
        bad = FactorMove(
            dim=entry[0],
            factor=entry[1] + 1,
            src_level=level,
            src_spatial=spatial,
            dst_level=(level + 1) % state.num_levels,
            dst_spatial=False,
        )
        with pytest.raises(ValueError, match="does not divide"):
            state.apply(bad)
        missing = FactorMove(
            dim="Z9", factor=2, src_level=0, src_spatial=False, dst_level=1, dst_spatial=False
        )
        with pytest.raises(ValueError, match="no Z9 entry"):
            state.apply(missing)

    def test_propose_move_returns_none_on_frozen_state(self):
        layer = matmul(m=1, n=1, k=1, name="frozen_mm")
        space = MapSpace(layer, ARCH)
        draws = space.sample_batch(1, random.Random(0))
        state = space.initial_state(draws, 0)
        assert propose_move(state, space.spatial_fanouts, random.Random(1)) is None

    def test_permutation_swap_changes_order_only(self):
        rng = random.Random(10)
        state, _ = seeded_state(layer_from_name("3_7_64_64_1"), ARCH, rng)
        level = next(
            lvl for lvl in range(state.num_levels) if len(state.temporal[lvl]) >= 2
        )
        before = [list(e) for e in state.temporal[level]]
        record = state.apply(PermutationSwap(level=level, i=0, j=1))
        after = state.temporal[level]
        assert after[0] == before[1] and after[1] == before[0]
        assert sorted(map(tuple, after)) == sorted(map(tuple, before))
        state.undo(record)
        assert [list(e) for e in state.temporal[level]] == before
