"""Tests for mapping serialisation and the command-line interface."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import simba_like
from repro.cli import main as cli_main
from repro.mapping import Mapping, MapSpace
from repro.mapping.serialize import (
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)
from repro.workloads import Layer, layer_from_name

ARCH = simba_like()


class TestSerialization:
    def _mapping(self):
        layer = Layer(r=3, s=3, p=4, q=4, c=8, k=16, name="roundtrip")
        return Mapping.from_factors(
            layer,
            temporal_factors=[{"R": 3, "S": 3, "P": 4, "Q": 4}, {"C": 8}, {}, {}, {"K": 4}, {}],
            spatial_factors=[{}, {}, {}, {}, {"K": 4}, {}],
        )

    def test_roundtrip_through_dict(self):
        mapping = self._mapping()
        restored = mapping_from_dict(mapping_to_dict(mapping))
        assert restored.layer == mapping.layer
        assert restored.summary() == mapping.summary()
        assert restored.is_consistent()

    def test_roundtrip_through_file(self, tmp_path):
        mapping = self._mapping()
        path = save_mapping(mapping, tmp_path / "mapping.json")
        restored = load_mapping(path)
        assert restored.summary() == mapping.summary()
        # The file is plain JSON so other tools can consume it.
        data = json.loads(path.read_text())
        assert data["version"] == 1

    def test_unknown_version_rejected(self):
        data = mapping_to_dict(self._mapping())
        data["version"] = 99
        with pytest.raises(ValueError):
            mapping_from_dict(data)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_random_mappings_roundtrip(self, seed):
        import random

        layer = layer_from_name("3_14_128_256_1")
        mapping = MapSpace(layer, ARCH).random_mapping(random.Random(seed))
        restored = mapping_from_dict(mapping_to_dict(mapping))
        assert restored.summary() == mapping.summary()
        for dim, bound in layer.bounds.items():
            assert restored.dim_product(dim) == bound


class TestCLI:
    def test_networks_listing(self, capsys):
        assert cli_main(["networks"]) == 0
        output = capsys.readouterr().out
        assert "resnet50" in output
        assert "3_7_512_512_1" in output

    def test_archs_listing(self, capsys):
        assert cli_main(["archs"]) == 0
        output = capsys.readouterr().out
        assert "baseline-4x4" in output
        assert "GlobalBuffer" in output

    def test_schedule_with_random_scheduler(self, capsys, tmp_path):
        save_path = tmp_path / "m.json"
        code = cli_main(
            ["schedule", "3_13_256_256_1", "--scheduler", "random", "--save", str(save_path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "analytical latency" in output
        assert save_path.exists()
        assert load_mapping(save_path).is_consistent()

    def test_schedule_with_cosa_on_noc_platform(self, capsys):
        code = cli_main(
            ["schedule", "3_13_192_384_1", "--scheduler", "cosa", "--platform", "noc"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "CoSA solve" in output
        assert "NoC-simulated latency" in output


class TestCLIFacade:
    """The registry-driven subcommands added with the declarative facade."""

    def test_registry_listing(self, capsys):
        assert cli_main(["registry"]) == 0
        output = capsys.readouterr().out
        for axis in ("schedulers:", "architectures:", "platforms:", "workloads:"):
            assert axis in output
        assert "cosa" in output
        assert "gpu-k80" in output

    def test_registry_single_axis(self, capsys):
        assert cli_main(["registry", "platforms"]) == 0
        output = capsys.readouterr().out
        assert "timeloop" in output and "noc" in output
        assert "schedulers:" not in output

    def test_schedule_accepts_cache_and_jobs(self, capsys, tmp_path):
        cache_file = tmp_path / "cache.json"
        args = ["schedule", "3_13_256_256_1", "--scheduler", "random",
                "--jobs", "2", "--cache", str(cache_file)]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert "Random search" in first
        assert cache_file.exists()

        # Second invocation reuses the persisted mapping cache.
        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert "served from mapping cache" in second

    def test_run_subcommand_executes_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "kind": "schedule",
            "workload": {"layers": ["3_13_256_256_1"]},
            "scheduler": {"name": "random", "options": {"num_valid": 2}},
        }))
        assert cli_main(["run", str(spec_path), "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema_version"] == 1
        assert envelope["data"]["outcomes"][0]["scheduler"] == "random"

        # The same spec renders the human-readable summary without --json.
        assert cli_main(["run", str(spec_path)]) == 0
        assert "analytical latency" in capsys.readouterr().out


class TestServiceCLI:
    """The job-oriented subcommands: submit / jobs / result / run --follow."""

    SPEC = {
        "kind": "schedule",
        "workload": {"layers": ["3_4_8_16_1"]},
        "scheduler": {"name": "random", "options": {"num_valid": 2, "max_attempts": 500}},
    }

    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return path

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_registry_json_is_sorted_and_stable(self, capsys):
        assert cli_main(["registry", "--json"]) == 0
        first = capsys.readouterr().out
        assert cli_main(["registry", "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        listing = json.loads(first)
        assert list(listing) == sorted(listing)
        for names in listing.values():
            assert list(names) == sorted(names)
        assert listing["schedulers"]["cosa"]

    def test_registry_json_single_axis(self, capsys):
        assert cli_main(["registry", "platforms", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert list(listing) == ["platforms"]

    def test_run_follow_streams_ndjson(self, capsys, spec_path):
        assert cli_main(["run", str(spec_path), "--follow"]) == 0
        lines = capsys.readouterr().out.splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["event"] for event in events] == [
            "run_queued",
            "run_started",
            "layer_scheduled",
            "run_finished",
        ]
        assert all(event["schema_version"] == 1 for event in events)
        # The final event carries the full v1 result envelope.
        envelope = events[-1]["result"]
        assert envelope["schema_version"] == 1
        assert envelope["data"]["succeeded"] is True

    def test_submit_jobs_result_workflow(self, capsys, tmp_path, spec_path):
        store = str(tmp_path / "store")

        assert cli_main(["submit", str(spec_path), "--store", store]) == 0
        first_line = capsys.readouterr().out.strip()
        assert "done" in first_line and "fresh run" in first_line
        job_id = first_line.split()[0]

        # Resubmission of the identical spec is a store hit.
        assert cli_main(["submit", str(spec_path), "--store", store, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "done"
        assert record["store_hit"] is True

        assert cli_main(["jobs", "--store", store]) == 0
        listing = capsys.readouterr().out
        assert job_id in listing
        assert "store-hit" in listing

        assert cli_main(["jobs", "--store", store, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["store_hit"] for r in records] == [False, True]

        assert cli_main(["result", job_id, "--store", store]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema_version"] == 1
        assert envelope["data"]["outcomes"][0]["layer"] == "3_4_8_16_1"

    def test_result_unknown_job_is_clean_error(self, capsys, tmp_path):
        assert cli_main(["result", "job-000001-nope", "--store", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "no job" in captured.err
        assert captured.out == ""

    def test_submit_failed_spec_records_failure(self, capsys, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(
            json.dumps({**self.SPEC, "scheduler": {"name": "cosaa"}})
        )
        store = str(tmp_path / "store")
        assert cli_main(["submit", str(spec_path), "--store", store]) == 1
        assert "did you mean 'cosa'" in capsys.readouterr().err

        # The failed job is recorded; fetching its result is a clean error.
        assert cli_main(["jobs", "--store", store, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["state"] == "failed"
        assert cli_main(["result", records[0]["job_id"], "--store", store]) == 1
        assert "no stored result" in capsys.readouterr().err

    def test_jobs_empty_store(self, capsys, tmp_path):
        assert cli_main(["jobs", "--store", str(tmp_path / "empty")]) == 0
        assert "no jobs recorded" in capsys.readouterr().out
