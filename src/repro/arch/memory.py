"""Software-managed memory hierarchy model.

The accelerator owns an ordered list of memory levels from the innermost
(registers next to the MACs) to the outermost (off-chip DRAM).  Every level
declares

* which data tensors it may hold (the constant matrix ``B`` of the paper),
* its capacity in bytes (``None`` marks an effectively unbounded backing
  store such as DRAM),
* its *spatial fanout* — how many copies of the inner subtree it feeds.  A
  fanout larger than one marks a level at which loops may be mapped
  spatially (e.g. the global buffer feeding a 4x4 PE array, or the per-PE
  buffers feeding 64 MAC lanes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.workloads.layer import TensorKind


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy.

    Parameters
    ----------
    name:
        Human readable identifier, e.g. ``"GlobalBuffer"``.
    capacity_bytes:
        Usable capacity of a single instance of the level.  ``None`` means
        unbounded (used for DRAM).
    tensors:
        The data tensors this level is allowed to hold (matrix ``B``).
    spatial_fanout:
        Number of child-subtree instances fed by this level.  Loops may only
        be mapped spatially at levels whose fanout is greater than one, and
        the product of the spatial factors at the level may not exceed it.
    bandwidth_words_per_cycle:
        Peak words per cycle this level can exchange with the level below it
        (its children).  Used by the performance model for the memory-bound
        latency term.
    """

    name: str
    capacity_bytes: int | None
    tensors: frozenset[TensorKind]
    spatial_fanout: int = 1
    bandwidth_words_per_cycle: float = float("inf")

    def __post_init__(self) -> None:
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive or None, got {self.capacity_bytes}")
        if self.spatial_fanout < 1:
            raise ValueError(f"{self.name}: spatial_fanout must be >= 1, got {self.spatial_fanout}")
        if self.bandwidth_words_per_cycle <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive, got {self.bandwidth_words_per_cycle}")
        if not isinstance(self.tensors, frozenset):
            object.__setattr__(self, "tensors", frozenset(self.tensors))

    def holds(self, tensor: TensorKind) -> bool:
        """True when this level may store ``tensor``."""
        return tensor in self.tensors

    @property
    def is_unbounded(self) -> bool:
        """True for backing-store levels without a capacity limit."""
        return self.capacity_bytes is None

    def scaled(self, capacity_scale: float = 1.0, fanout: int | None = None) -> "MemoryLevel":
        """Return a copy with a scaled capacity and/or replaced fanout.

        Used by the architecture presets to derive the Fig. 9 variants from
        the baseline.
        """
        capacity = self.capacity_bytes
        if capacity is not None:
            capacity = int(round(capacity * capacity_scale))
        return replace(
            self,
            capacity_bytes=capacity,
            spatial_fanout=self.spatial_fanout if fanout is None else fanout,
        )


class MemoryHierarchy:
    """Ordered collection of :class:`MemoryLevel` from innermost to outermost.

    The hierarchy is immutable after construction.  It provides index lookup
    by name, iteration, and the helper queries used when building the CoSA
    constraint matrices.
    """

    def __init__(self, levels: Iterable[MemoryLevel]):
        self._levels: tuple[MemoryLevel, ...] = tuple(levels)
        if len(self._levels) < 2:
            raise ValueError("a memory hierarchy needs at least two levels (on-chip + backing store)")
        names = [level.name for level in self._levels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate memory level names: {names}")
        if not self._levels[-1].is_unbounded:
            raise ValueError("the outermost level is expected to be an unbounded backing store (DRAM)")
        self._index = {level.name: i for i, level in enumerate(self._levels)}

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[MemoryLevel]:
        return iter(self._levels)

    def __getitem__(self, key: int | str) -> MemoryLevel:
        if isinstance(key, str):
            return self._levels[self.index_of(key)]
        return self._levels[key]

    @property
    def levels(self) -> tuple[MemoryLevel, ...]:
        """All levels, innermost first."""
        return self._levels

    @property
    def names(self) -> tuple[str, ...]:
        """Level names, innermost first."""
        return tuple(level.name for level in self._levels)

    def index_of(self, name: str) -> int:
        """Index of the level called ``name`` (0 = innermost)."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no memory level named {name!r}; available: {list(self._index)}") from None

    # ------------------------------------------------------------------ queries
    @property
    def innermost(self) -> MemoryLevel:
        """The innermost (register) level."""
        return self._levels[0]

    @property
    def outermost(self) -> MemoryLevel:
        """The outermost (DRAM) level."""
        return self._levels[-1]

    @property
    def dram_index(self) -> int:
        """Index of the outermost level."""
        return len(self._levels) - 1

    def levels_holding(self, tensor: TensorKind) -> list[int]:
        """Indices of levels that may store ``tensor``, innermost first."""
        return [i for i, level in enumerate(self._levels) if level.holds(tensor)]

    def spatial_levels(self) -> list[int]:
        """Indices of levels with a spatial fanout greater than one."""
        return [i for i, level in enumerate(self._levels) if level.spatial_fanout > 1]

    def total_spatial_fanout(self) -> int:
        """Product of all level fanouts (total parallel compute lanes)."""
        total = 1
        for level in self._levels:
            total *= level.spatial_fanout
        return total

    def instances_of(self, index: int) -> int:
        """Number of physical instances of the level at ``index``.

        A level is replicated once for every unit of fanout of the levels
        *above* it: e.g. with a global buffer feeding 16 PEs, the per-PE
        weight buffer has 16 instances.
        """
        count = 1
        for level in self._levels[index + 1:]:
            count *= level.spatial_fanout
        return count

    def innermost_level_for(self, tensor: TensorKind) -> int:
        """Index of the innermost level that may hold ``tensor``."""
        holding = self.levels_holding(tensor)
        if not holding:
            raise ValueError(f"no memory level stores tensor {tensor!r}")
        return holding[0]

    def bypassed(self, tensor: TensorKind, index: int) -> bool:
        """True when level ``index`` does not store ``tensor`` (tensor bypasses it)."""
        return not self._levels[index].holds(tensor)

    def describe(self) -> str:
        """Human-readable multi-line summary of the hierarchy."""
        lines = []
        for i, level in enumerate(self._levels):
            cap = "inf" if level.is_unbounded else f"{level.capacity_bytes}B"
            tensors = ",".join(sorted(t.short_name for t in level.tensors))
            fanout = f" fanout={level.spatial_fanout}" if level.spatial_fanout > 1 else ""
            lines.append(f"[{i}] {level.name:<18} cap={cap:<10} tensors={tensors}{fanout}")
        return "\n".join(lines)

    def with_level(self, name: str, new_level: MemoryLevel) -> "MemoryHierarchy":
        """Return a new hierarchy with the level called ``name`` replaced."""
        index = self.index_of(name)
        levels = list(self._levels)
        levels[index] = new_level
        return MemoryHierarchy(levels)
