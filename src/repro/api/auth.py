"""API-key authentication for the multi-tenant scheduling gateway.

The gateway's tenancy model is deliberately small: a JSON config file maps
**API keys to tenant names**, every ``/v1/{tenant}/...`` request must carry
a key (``Authorization: Bearer <key>`` or ``X-API-Key: <key>``), and the
key's tenant must match the tenant in the URL.  The two failure modes map
onto the two HTTP statuses:

* :class:`AuthenticationError` (**401**) — no key, or a key nobody knows;
* :class:`AuthorizationError` (**403**) — a valid key for a *different*
  tenant (cross-tenant access is never allowed, not even read-only).

Keys file format (either shape)::

    {"alice-key": "acme", "bob-key": "bobco"}
    {"keys": {"alice-key": "acme", "bob-key": "bobco"}}

Run the gateway without a keys file and authentication is off entirely —
every URL tenant is accepted verbatim.  That is the single-user/dev mode;
anything network-facing should ship a keys file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping


class AuthError(Exception):
    """Base class of both gateway auth failures."""

    #: HTTP status the gateway maps this error onto.
    status = 401


class AuthenticationError(AuthError):
    """The request carried no API key, or an unknown one (HTTP 401)."""

    status = 401


class AuthorizationError(AuthError):
    """A valid key tried to reach another tenant's namespace (HTTP 403)."""

    status = 403


class ApiKeyAuth:
    """Key → tenant lookup table with the gateway's authorize contract."""

    def __init__(self, keys: Mapping[str, str]):
        if not keys:
            raise ValueError("auth config must define at least one API key")
        for key, tenant in keys.items():
            if not isinstance(key, str) or not key:
                raise ValueError(f"API keys must be non-empty strings, got {key!r}")
            if not isinstance(tenant, str) or not tenant:
                raise ValueError(
                    f"tenant for key {key!r} must be a non-empty string, got {tenant!r}"
                )
        self._keys = dict(keys)

    @classmethod
    def from_file(cls, path: str | Path) -> "ApiKeyAuth":
        """Load a keys file (flat mapping, or nested under ``"keys"``)."""
        text = Path(path).read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"keys file {path} is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ValueError(f"keys file {path} must hold a JSON object")
        if isinstance(data.get("keys"), dict):
            data = data["keys"]
        return cls(data)

    @property
    def tenants(self) -> tuple[str, ...]:
        """Every tenant at least one key maps to, sorted."""
        return tuple(sorted(set(self._keys.values())))

    def tenant_for(self, key: str) -> str | None:
        """The tenant a key belongs to, or ``None`` for unknown keys."""
        return self._keys.get(key)

    def authorize(self, key: str | None, tenant: str) -> str:
        """Check ``key`` against ``tenant`` and return the tenant.

        Raises :class:`AuthenticationError` for missing/unknown keys and
        :class:`AuthorizationError` when the key belongs to another tenant.
        """
        if not key:
            raise AuthenticationError("missing API key")
        owner = self._keys.get(key)
        if owner is None:
            raise AuthenticationError("unknown API key")
        if owner != tenant:
            raise AuthorizationError(
                f"API key is not authorized for tenant {tenant!r}"
            )
        return owner
