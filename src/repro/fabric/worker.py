"""The ``repro worker`` process: drain fabric claims through the engine.

A :class:`FabricWorker` is the execution half of the fabric: it claims tasks
from the :class:`~repro.fabric.queue.WorkQueue`, runs them through the
**same** :func:`repro.api.runner.execute` path a local ``run()`` uses (so the
stored envelope is bit-identical to a single-process run of the same spec),
and narrates progress through the typed event protocol of
:mod:`repro.api.events` — appended live, line by line, to the job's NDJSON
event log so gateways and ``Job.events()`` watchers can tail it while the
solve is still running on another machine.

Execution of one claim::

    store = ResultStore(task.store_root, results_root=task.results_root)
    cached = store.get(spec)            # shared, content-addressed tier
    if cached: complete(store_hit=True) # zero scheduler invocations
    else:      runner.execute(spec) -> store.put -> complete()

A heartbeat thread renews the lease at ``lease_ttl / 3`` while the solve
runs.  If renewal discovers the lease was reclaimed (this worker was
presumed dead), the worker demotes itself: the solve finishes and its
content-addressed store write stands (identical bytes, harmless), but task
and job bookkeeping belong to whoever re-dispatched it — the job completes
exactly once.

Lifecycle: :meth:`FabricWorker.stop` (wired to SIGTERM/SIGINT by the CLI)
stops new claims; the in-flight task finishes — or, when ``drain=False``,
is released back to ``pending`` for another worker — the event log is
flushed, and :meth:`run` returns cleanly with exit code 0.
"""

from __future__ import annotations

import os
import socket
import threading

from repro.api.events import (
    Event,
    LayerScheduled,
    RunFailed,
    RunFinished,
    RunStarted,
)
from repro.api.service import JobState
from repro.api.specs import RunSpec
from repro.api.store import ResultStore
from repro.fabric.queue import Claim, WorkQueue
from repro.io_utils import append_ndjson


def default_worker_id() -> str:
    """A worker id unique per (host, pid) — stable across one process life."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _EventAppender:
    """Append typed events to a job's NDJSON log with continuous ``seq``.

    The submitting service wrote ``run_queued`` (seq 0) before enqueueing,
    so the worker continues numbering from the current line count — the
    combined file reads exactly like a local job's log.
    """

    def __init__(self, store: ResultStore, job_id: str):
        self.store = store
        self.job_id = job_id
        self.path = store.events_path(job_id)
        self.seq = 0
        if self.path.exists():
            self.seq = sum(1 for line in self.path.read_text().splitlines() if line)
        self.events: list[Event] = []

    def emit(self, cls: type[Event], **fields) -> Event:
        event = cls(job_id=self.job_id, seq=self.seq, **fields)
        self.seq += 1
        self.events.append(event)
        append_ndjson(self.path, event.to_dict())
        return event


class FabricWorker:
    """One claim-execute loop over a fabric root.

    Parameters
    ----------
    fabric_root:
        The directory the :class:`WorkQueue` lives under (shared with the
        enqueueing service and every other worker).
    worker_id:
        Name recorded in leases and the journal; defaults to ``host-pid``.
    lease_ttl / heartbeat_interval:
        Claim TTL and renewal period (default: ``ttl / 3``).
    poll_interval:
        Idle sleep between empty claim scans.
    max_tasks:
        Exit after this many executed tasks (``None`` = run until stopped);
        the knob subprocess tests and bounded CI smoke runs use.
    drain:
        On :meth:`stop`, ``True`` finishes the in-flight task first (the
        SIGTERM default); ``False`` releases it back to the queue.
    """

    def __init__(
        self,
        fabric_root,
        *,
        worker_id: str | None = None,
        lease_ttl: float | None = None,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.2,
        max_tasks: int | None = None,
        drain: bool = True,
        log=None,
    ):
        queue_kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
        self.queue = WorkQueue(fabric_root, **queue_kwargs)
        self.worker_id = worker_id or default_worker_id()
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else self.queue.lease_ttl / 3
        )
        self.poll_interval = poll_interval
        self.max_tasks = max_tasks
        self.drain = drain
        self.tasks_done = 0
        self._log = log or (lambda message: None)
        self._stop = threading.Event()
        self._lease_lost = threading.Event()

    # -------------------------------------------------------------- lifecycle
    def stop(self) -> None:
        """Request a graceful exit: no new claims; see ``drain`` for in-flight."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def run(self) -> int:
        """Claim and execute until stopped (or ``max_tasks``); returns 0."""
        self._log(f"worker {self.worker_id} draining {self.queue.root}")
        while not self._stop.is_set():
            if not self.run_one():
                self._stop.wait(self.poll_interval)
            if self.max_tasks is not None and self.tasks_done >= self.max_tasks:
                break
        self._log(f"worker {self.worker_id} exiting after {self.tasks_done} task(s)")
        return 0

    def run_one(self) -> bool:
        """One sweep + claim + execute; ``False`` when the queue was idle."""
        self.queue.reclaim_expired(sweeper=self.worker_id)
        claim = self.queue.claim(self.worker_id)
        if claim is None:
            return False
        self._execute(claim)
        self.tasks_done += 1
        return True

    # -------------------------------------------------------------- execution
    def _execute(self, claim: Claim) -> None:
        task = claim.task
        store = ResultStore(
            task["store_root"],
            job_prefix=task.get("job_prefix", ""),
            results_root=task.get("results_root"),
        )
        events = _EventAppender(store, task["job_id"])
        self._lease_lost.clear()
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(claim, stop_heartbeat),
            name=f"repro-heartbeat-{claim.task_id}",
            daemon=True,
        )
        heartbeat.start()
        try:
            self._run_task(claim, store, events)
        finally:
            stop_heartbeat.set()
            heartbeat.join()

    def _run_task(self, claim: Claim, store: ResultStore, events: _EventAppender) -> None:
        task = claim.task
        if self._stop.is_set() and not self.drain:
            # Stopped between claim and start: hand the task back untouched.
            self.queue.release(claim)
            return
        spec = RunSpec.from_dict(task["spec"])
        self._record_job(store, task, JobState.RUNNING)
        events.emit(RunStarted)
        self._log(
            f"worker {self.worker_id} claimed {claim.task_id} "
            f"(job {task['job_id']}, attempt {task['attempts']})"
        )
        try:
            result = store.get(spec, task["fingerprint"])
            store_hit = result is not None
            if result is None:
                from repro.api import runner

                result = runner.execute(
                    spec,
                    emit_layer=lambda payload: events.emit(LayerScheduled, **payload),
                )
                store.put(result, task["fingerprint"])
        except BaseException as error:
            events.emit(
                RunFailed, error_type=type(error).__name__, error_message=str(error)
            )
            self._record_job(
                store,
                task,
                JobState.FAILED,
                error={"type": type(error).__name__, "message": str(error)},
                num_events=events.seq,
            )
            self.queue.fail(claim, error)
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            return
        if self._lease_lost.is_set():
            # Presumed dead and re-dispatched: the store write stands (same
            # bytes), but the re-dispatched attempt owns all bookkeeping.
            self._log(f"worker {self.worker_id} lost the lease on {claim.task_id}")
            return
        events.emit(RunFinished, store_hit=store_hit, result=result.to_dict())
        self._record_job(
            store, task, JobState.DONE, store_hit=store_hit, num_events=events.seq
        )
        self.queue.complete(claim, store_hit=store_hit)
        origin = "store hit" if store_hit else "fresh solve"
        self._log(
            f"worker {self.worker_id} finished {claim.task_id} "
            f"(job {task['job_id']}, {origin})"
        )

    def _heartbeat_loop(self, claim: Claim, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            if not self.queue.heartbeat(claim):
                self._lease_lost.set()
                return

    # ------------------------------------------------------------ bookkeeping
    def _record_job(self, store: ResultStore, task: dict, state, **fields) -> None:
        """Rewrite the job record the service created at submit time."""
        record = store.load_job(task["job_id"]) or {
            "job_id": task["job_id"],
            "kind": task["spec"].get("kind", "schedule"),
            "priority": task["priority"],
            "spec_fingerprint": task["fingerprint"],
            "store_hit": False,
            "error": None,
            "num_events": 0,
            "spec": task["spec"],
        }
        record["state"] = state.value if hasattr(state, "value") else str(state)
        record["worker"] = self.worker_id
        record["task_id"] = task["task_id"]
        record.update(fields)
        store.record_job(record)


def serve(argv=None) -> int:
    """``python -m repro.fabric.worker`` — a minimal standalone entry point.

    The full-featured spelling is ``repro worker`` (see :mod:`repro.cli`);
    this module entry exists so the worker can run from a bare checkout.
    """
    from repro.cli import main

    return main(["worker", *(argv if argv is not None else [])])


if __name__ == "__main__":  # pragma: no cover - thin module runner
    import sys

    raise SystemExit(serve(sys.argv[1:]))
