"""Unit tests for the CoSA formulation: constants, variables, constraints."""

import math

import numpy as np
import pytest

from repro.arch import simba_like
from repro.core.constants import is_relevant, relevance_matrix, relevant_dims, storage_matrix
from repro.core.constraints import add_all_constraints
from repro.core.formulation import CoSAFormulation
from repro.core.objectives import (
    ObjectiveWeights,
    mapping_compute,
    mapping_objective_breakdown,
    mapping_traffic,
    mapping_utilization,
)
from repro.core.variables import CoSAVariables
from repro.solver.model import MIPModel
from repro.solver.solution import SolveStatus
from repro.workloads import Layer, layer_from_name
from repro.workloads.layer import DIMENSION_NAMES, TensorKind

ARCH = simba_like()


class TestConstantMatrices:
    def test_relevance_matrix_matches_table_iv(self):
        a = relevance_matrix()
        assert a.shape == (7, 3)
        # Weight column: R, S, C, K.
        assert list(np.flatnonzero(a[:, TensorKind.WEIGHT])) == [
            DIMENSION_NAMES.index(d) for d in ("R", "S", "C", "K")
        ]
        # Output column: P, Q, K, N.
        assert list(np.flatnonzero(a[:, TensorKind.OUTPUT])) == [
            DIMENSION_NAMES.index(d) for d in ("P", "Q", "K", "N")
        ]

    def test_storage_matrix_matches_hierarchy(self):
        b = storage_matrix(ARCH)
        assert b.shape == (6, 3)
        wbuf = ARCH.hierarchy.index_of("WeightBuffer")
        assert list(b[wbuf]) == [1, 0, 0]
        dram = ARCH.hierarchy.dram_index
        assert list(b[dram]) == [1, 1, 1]

    def test_relevant_dims_helpers(self):
        assert relevant_dims(TensorKind.WEIGHT) == ("R", "S", "C", "K")
        assert is_relevant("K", TensorKind.OUTPUT)
        assert not is_relevant("K", TensorKind.INPUT)


class TestVariables:
    def test_factor_enumeration(self):
        layer = Layer(r=3, s=3, p=4, q=4, c=8, k=16, n=1)
        model = MIPModel()
        variables = CoSAVariables(model, layer, ARCH)
        # 1 + 1 + 2 + 2 + 3 + 4 + 0 prime factors.
        assert len(variables.factors) == 13
        assert len(variables.factors_of_dim("K")) == 4
        assert all(f.log_value == pytest.approx(math.log(f.value)) for f in variables.factors)

    def test_spatial_variables_respect_fanout(self):
        # A prime factor of 7 cannot be mapped across a 4x4=16-PE array level
        # only when it exceeds the fanout; 7 <= 16 so it can, but 17 could not.
        layer = Layer(p=7, c=17)
        model = MIPModel()
        variables = CoSAVariables(model, layer, ARCH)
        seven = variables.factors_of_dim("P")[0]
        seventeen = variables.factors_of_dim("C")[0]
        gb = ARCH.pe_level_index()
        assert variables.spatial_at(seven, gb) is not None
        assert variables.spatial_at(seventeen, gb) is None

    def test_temporal_levels_stop_at_noc_boundary(self):
        layer = Layer(k=8)
        variables = CoSAVariables(MIPModel(), layer, ARCH)
        assert variables.temporal_levels == list(range(ARCH.pe_level_index() + 1))

    def test_active_dims_and_ranks(self):
        layer = Layer(p=4, k=8)
        variables = CoSAVariables(MIPModel(), layer, ARCH)
        assert variables.active_dims == ["P", "K"]
        assert variables.num_ranks == 2

    def test_identical_factor_runs(self):
        layer = Layer(c=8)  # three factors of 2
        variables = CoSAVariables(MIPModel(), layer, ARCH)
        runs = variables.identical_factor_runs()
        assert len(runs) == 1
        assert len(runs[0]) == 3

    def test_variable_count_matches_registry(self):
        layer = Layer(p=4, c=4, k=4)
        model = MIPModel()
        variables = CoSAVariables(model, layer, ARCH)
        assert variables.num_variables == model.num_variables


class TestFormulationSolutions:
    """End-to-end checks on small layers where the optimum is easy to reason about."""

    def _schedule(self, layer, weights=ObjectiveWeights()):
        formulation = CoSAFormulation(layer, ARCH, weights=weights, capacity_fraction=0.5)
        solution = formulation.solve()
        assert solution.status is SolveStatus.OPTIMAL
        mapping = formulation.decode(solution)
        return formulation, solution, mapping

    def test_small_layer_produces_consistent_mapping(self):
        layer = Layer(r=3, s=3, p=4, q=4, c=8, k=16)
        _, _, mapping = self._schedule(layer)
        assert mapping.is_consistent()
        assert mapping.num_levels == ARCH.num_memory_levels

    def test_spatial_factors_respect_fanouts(self):
        layer = Layer(p=8, q=8, c=16, k=32)
        _, _, mapping = self._schedule(layer)
        for index, level in enumerate(ARCH.hierarchy):
            assert mapping.spatial_product_at(index) <= level.spatial_fanout

    def test_compute_objective_encourages_spatial_mapping(self):
        # With a compute-dominant objective the solver should parallelise
        # heavily rather than run everything sequentially.
        layer = Layer(c=64, k=64)
        weights = ObjectiveWeights(utilization=0.0, compute=1.0, traffic=0.0)
        _, _, mapping = self._schedule(layer, weights)
        assert mapping.total_spatial_product() >= 64

    def test_mip_constraints_all_satisfied_at_solution(self):
        layer = Layer(r=3, p=4, c=8, k=8)
        formulation, solution, _ = self._schedule(layer)
        for constraint in formulation.model.constraints:
            assert constraint.satisfied_by(solution.values), constraint.name

    def test_objective_breakdown_matches_decoded_mapping(self):
        """The MIP's objective terms must agree with the direct evaluation of the
        decoded mapping (they encode the same Eq. 5/6/11 quantities)."""
        layer = Layer(r=3, p=4, c=8, k=8)
        formulation, solution, mapping = self._schedule(layer)
        solver_side = formulation.objective_breakdown(solution)
        mapping_side = mapping_objective_breakdown(mapping, ARCH)
        assert solver_side.compute == pytest.approx(mapping_side.compute, abs=1e-6)
        assert solver_side.utilization == pytest.approx(mapping_side.utilization, abs=1e-6)
        assert solver_side.traffic == pytest.approx(mapping_side.traffic, abs=1e-6)

    def test_decoded_mapping_is_valid_under_cost_model(self):
        from repro.model import CostModel

        layer = layer_from_name("3_14_128_256_1")
        formulation = CoSAFormulation(layer, ARCH, capacity_fraction=0.5)
        solution = formulation.solve()
        mapping = formulation.decode(solution)
        result = CostModel(ARCH).evaluate(mapping)
        assert result.valid, result.violations

    def test_stats_report_problem_size(self):
        layer = Layer(c=16, k=16)
        formulation = CoSAFormulation(layer, ARCH)
        stats = formulation.stats
        assert stats.num_prime_factors == 8
        assert stats.num_variables > 0
        assert stats.num_constraints > 0


class TestMappingSideObjectives:
    def test_compute_term_is_log_of_temporal_product(self):
        from repro.mapping import Mapping

        layer = Layer(p=4, c=8, k=16)
        mapping = Mapping.from_factors(
            layer,
            temporal_factors=[{"P": 4}, {"C": 8}, {}, {}, {"K": 4}, {}],
            spatial_factors=[{}, {}, {}, {}, {"K": 4}, {}],
        )
        assert mapping_compute(mapping) == pytest.approx(math.log(4 * 8 * 4))

    def test_traffic_term_depends_on_permutation(self):
        from repro.mapping import Mapping

        # Asymmetric bounds (small P, large K) make the permutation matter:
        # iterating the small P dimension outermost re-transfers far less data
        # than iterating the large K dimension outermost.
        layer = Layer(p=4, c=1, k=16)

        def build(order):
            return Mapping.from_factors(
                layer,
                temporal_factors=[{}, {}, {}, {}, {"P": 4, "K": 16}, {}],
                permutations=[(), (), (), (), order, ()],
            )

        p_innermost = mapping_traffic(build(("P", "K")), ARCH)
        k_innermost = mapping_traffic(build(("K", "P")), ARCH)
        assert p_innermost > k_innermost

    def test_utilization_counts_only_onchip_levels(self):
        from repro.mapping import Mapping

        layer = Layer(k=16)
        all_outer = Mapping.from_factors(
            layer, temporal_factors=[{}, {}, {}, {}, {"K": 16}, {}]
        )
        all_inner = Mapping.from_factors(
            layer, temporal_factors=[{"K": 16}, {}, {}, {}, {}, {}]
        )
        assert mapping_utilization(all_inner, ARCH) > mapping_utilization(all_outer, ARCH)

    def test_breakdown_total_uses_weights(self):
        from repro.mapping import Mapping

        layer = Layer(k=4)
        mapping = Mapping.from_factors(layer, temporal_factors=[{"K": 4}, {}, {}, {}, {}, {}])
        weights = ObjectiveWeights(utilization=2.0, compute=3.0, traffic=0.5)
        breakdown = mapping_objective_breakdown(mapping, ARCH, weights)
        expected = -2.0 * breakdown.utilization + 3.0 * breakdown.compute + 0.5 * breakdown.traffic
        assert breakdown.total == pytest.approx(expected)


class TestObjectiveWeights:
    def test_scaled_replaces_selected_fields(self):
        weights = ObjectiveWeights().scaled(traffic=5.0)
        assert weights.traffic == 5.0
        assert weights.compute == ObjectiveWeights().compute
