"""MILP backend built on :func:`scipy.optimize.milp` (HiGHS)."""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.solver.solution import Solution, SolveStatus


class ScipyMilpBackend:
    """Exact MILP solver using SciPy's HiGHS bindings.

    Parameters
    ----------
    time_limit_seconds:
        Optional wall-clock limit handed to HiGHS.
    mip_rel_gap:
        Relative optimality gap at which HiGHS may stop (0 = prove optimal).
    """

    def __init__(self, time_limit_seconds: float | None = None, mip_rel_gap: float = 0.0):
        self.time_limit_seconds = time_limit_seconds
        self.mip_rel_gap = mip_rel_gap

    def solve(self, model) -> Solution:
        """Solve ``model`` and translate the scipy result into a :class:`Solution`."""
        form = model.to_matrix_form()
        constraints = []
        if form.a_ub.shape[0]:
            constraints.append(LinearConstraint(form.a_ub, -np.inf, form.b_ub))
        if form.a_eq.shape[0]:
            constraints.append(LinearConstraint(form.a_eq, form.b_eq, form.b_eq))
        options: dict = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit_seconds is not None:
            options["time_limit"] = self.time_limit_seconds

        start = time.perf_counter()
        result = milp(
            c=form.c,
            constraints=constraints or None,
            integrality=form.integrality,
            bounds=Bounds(form.lower, form.upper),
            options=options,
        )
        elapsed = time.perf_counter() - start

        if result.status == 0 and result.x is not None:
            status = SolveStatus.OPTIMAL
        elif result.status == 2:
            status = SolveStatus.INFEASIBLE
        elif result.status == 3:
            status = SolveStatus.UNBOUNDED
        elif result.status == 1 and result.x is not None:
            status = SolveStatus.TIME_LIMIT
        else:
            status = SolveStatus.ERROR

        values = {}
        objective = float("nan")
        if result.x is not None:
            raw = np.asarray(result.x, dtype=float)
            for var, value in zip(form.variables, raw):
                if var.kind != "continuous":
                    value = float(round(value))
                values[var] = float(value)
            objective = float(form.c @ raw)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_time_seconds=elapsed,
            iterations=int(getattr(result, "mip_node_count", 0) or 0),
        )
