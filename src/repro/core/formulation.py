"""Assembly of the full CoSA mixed-integer program.

:class:`CoSAFormulation` wires the variables, constraints and objectives
together for one (layer, accelerator) pair and knows how to solve itself and
decode the result.  :class:`repro.core.scheduler.CoSAScheduler` is the
user-facing wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.core.constraints import add_all_constraints
from repro.core.decode import decode_solution
from repro.core.objectives import (
    ObjectiveBreakdown,
    ObjectiveWeights,
    compute_expression,
    traffic_expression,
    utilization_expression,
)
from repro.core.variables import CoSAVariables
from repro.mapping.mapping import Mapping
from repro.solver.model import MIPModel
from repro.solver.solution import Solution
from repro.workloads.layer import Layer


@dataclass
class FormulationStats:
    """Size of the generated MIP (reported in Table VI style summaries)."""

    num_prime_factors: int
    num_variables: int
    num_constraints: int


class CoSAFormulation:
    """The CoSA MIP for one layer on one accelerator.

    Parameters
    ----------
    layer:
        Layer to schedule.
    accelerator:
        Target spatial accelerator.
    weights:
        Objective weights (Eq. 12).
    capacity_fraction:
        Derating applied to every buffer capacity in the MIP; keeps the
        decoded mapping valid under the cost model's stricter accounting
        (input halos, shared-buffer packing).
    """

    def __init__(
        self,
        layer: Layer,
        accelerator: Accelerator,
        weights: ObjectiveWeights = ObjectiveWeights(),
        capacity_fraction: float = 1.0,
    ):
        self.layer = layer
        self.accelerator = accelerator
        self.weights = weights
        self.model = MIPModel(name=f"cosa[{layer.name or layer.canonical_name}]")
        self.variables = CoSAVariables(self.model, layer, accelerator)
        add_all_constraints(self.model, self.variables, capacity_fraction)

        self._utilization = utilization_expression(self.variables)
        self._compute = compute_expression(self.variables)
        self._traffic = traffic_expression(self.variables)
        objective = (
            (-weights.utilization) * self._utilization
            + weights.compute * self._compute
            + weights.traffic * self._traffic
        )
        self.model.set_objective(objective, minimize=True)

    # ------------------------------------------------------------------ solve
    def solve(self, backend=None) -> Solution:
        """Solve the MIP with ``backend`` (defaults to scipy HiGHS)."""
        return self.model.solve(backend)

    def decode(self, solution: Solution) -> Mapping:
        """Translate ``solution`` into a :class:`Mapping`."""
        return decode_solution(self.variables, solution)

    # ---------------------------------------------------------------- reports
    def objective_breakdown(self, solution: Solution) -> ObjectiveBreakdown:
        """The three objective terms at ``solution`` (Fig. 8 style breakdown)."""
        return ObjectiveBreakdown(
            utilization=solution.value(self._utilization),
            compute=solution.value(self._compute),
            traffic=solution.value(self._traffic),
            weights=self.weights,
        )

    @property
    def stats(self) -> FormulationStats:
        """Problem-size statistics of the generated MIP."""
        return FormulationStats(
            num_prime_factors=len(self.variables.factors),
            num_variables=self.model.num_variables,
            num_constraints=self.model.num_constraints,
        )
