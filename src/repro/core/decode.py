"""Translate a solved CoSA MIP back into a :class:`~repro.mapping.mapping.Mapping`.

Decoding rules
--------------
* A factor whose spatial assignment variable is 1 becomes a ``spatial_for``
  loop at that level.
* Temporal factors at levels **below** the NoC boundary become temporal loops
  at their level; within a level they are ordered by a stationarity
  heuristic — loops irrelevant to the level's resident tensor are placed
  innermost so that tensor is re-fetched as rarely as possible (the MIP only
  optimises the permutation of the NoC-boundary loops, matching the paper).
* Temporal factors at the NoC boundary are grouped by dimension and the
  groups are ordered by the dimension's permutation rank (rank 0 =
  innermost), exactly the order the traffic objective optimised.
"""

from __future__ import annotations

from repro.core.constants import is_relevant
from repro.core.variables import CoSAVariables, PrimeFactor
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.solver.solution import Solution
from repro.workloads.layer import TensorKind


def _primary_tensor(variables: CoSAVariables, level_index: int) -> TensorKind | None:
    """The single tensor stored at ``level_index`` (None for shared/omni levels)."""
    stored = [t for t in TensorKind if variables.accelerator.hierarchy[level_index].holds(t)]
    if len(stored) == 1:
        return stored[0]
    return None


def _order_inner_level(
    variables: CoSAVariables, level_index: int, factors: list[PrimeFactor]
) -> list[PrimeFactor]:
    """Order the temporal factors of an inner level, innermost first.

    Loops irrelevant to the level's resident tensor come first (innermost) so
    the resident tile stays stationary across them; ties keep the problem's
    canonical dimension order (R,S,P,Q,C,K,N for conv).
    """
    primary = _primary_tensor(variables, level_index)
    problem = variables.problem
    canonical = {dim: i for i, dim in enumerate(problem.dims)}

    def key(factor: PrimeFactor):
        relevant = (
            is_relevant(factor.dim, primary, problem) if primary is not None else False
        )
        return (1 if relevant else 0, canonical[factor.dim], factor.ordinal)

    return sorted(factors, key=key)


def _dim_rank(variables: CoSAVariables, solution: Solution, dim: str) -> int:
    """Permutation rank of ``dim`` (a large sentinel when the dim is unranked)."""
    for slot in range(variables.num_ranks):
        if solution.rounded(variables.rank[(dim, slot)]) == 1:
            return slot
    return variables.num_ranks + variables.problem.dims.index(dim)


def decode_solution(variables: CoSAVariables, solution: Solution) -> Mapping:
    """Build the :class:`Mapping` encoded by ``solution``."""
    if not solution.values:
        raise ValueError("cannot decode an empty solution (solver did not find a feasible point)")

    num_levels = variables.num_levels
    noc_level = variables.noc_level
    spatial_loops: list[list[Loop]] = [[] for _ in range(num_levels)]
    inner_temporal: list[list[PrimeFactor]] = [[] for _ in range(num_levels)]
    outer_temporal: list[PrimeFactor] = []

    for factor in variables.factors:
        assigned = False
        for level in variables.temporal_levels:
            if solution.rounded(variables.temporal_at(factor, level)) == 1:
                if level == noc_level:
                    outer_temporal.append(factor)
                else:
                    inner_temporal[level].append(factor)
                assigned = True
                break
        if assigned:
            continue
        for level in variables.spatial_fanouts:
            var = variables.spatial_at(factor, level)
            if var is not None and solution.rounded(var) == 1:
                spatial_loops[level].append(Loop(dim=factor.dim, bound=factor.value, spatial=True))
                assigned = True
                break
        if not assigned:
            raise ValueError(
                f"prime factor {factor.dim}{factor.ordinal}={factor.value} has no assignment "
                "in the solution"
            )

    outer_sorted = sorted(
        outer_temporal,
        key=lambda f: (_dim_rank(variables, solution, f.dim), f.ordinal),
    )

    level_mappings: list[LevelMapping] = []
    for level in range(num_levels):
        ordered = _order_inner_level(variables, level, inner_temporal[level])
        temporal = [Loop(dim=f.dim, bound=f.value, spatial=False) for f in ordered]
        if level == noc_level:
            temporal.extend(
                Loop(dim=f.dim, bound=f.value, spatial=False) for f in outer_sorted
            )
        level_mappings.append(
            LevelMapping(temporal=temporal, spatial=_merge_spatial(spatial_loops[level]))
        )
    mapping = Mapping(variables.layer, level_mappings)
    mapping.validate_against_layer()
    return mapping


def _merge_spatial(loops: list[Loop]) -> list[Loop]:
    """Merge spatial loops over the same dimension into one loop per dimension."""
    merged: dict[str, int] = {}
    for loop in loops:
        merged[loop.dim] = merged.get(loop.dim, 1) * loop.bound
    return [Loop(dim=dim, bound=bound, spatial=True) for dim, bound in merged.items()]
