"""Content-addressed on-disk store of finished :class:`RunResult` envelopes.

The paper's sweeps re-run the same experiments constantly — across shell
sessions, CI jobs and notebook restarts — and the mapping cache only
de-duplicates *per-layer solves inside one process tree*.  The
:class:`ResultStore` closes the loop at the experiment level: every finished
run is persisted under the **fingerprint of its spec**, so resubmitting an
identical spec is a store hit that returns the stored envelope verbatim
without invoking any scheduler.

* Envelopes are the plain v1 :meth:`~repro.api.result.RunResult.to_dict`
  JSON — the store adds no wrapper, so a stored file round-trips through
  ``RunResult.from_json`` and is byte-for-byte what ``run()`` produced.
* The key (:func:`spec_fingerprint`) hashes the *result-determining* part of
  the spec: execution-only knobs (``jobs``, ``executor``, the mapping-cache
  path) are excluded, so a 1-job and an 8-job run of the same experiment
  share one entry, while everything that can change the payload (kind, axes,
  seed, options, evaluation batch size and time budget) splits entries.
* Writes go through :func:`repro.io_utils.atomic_write_json`, so concurrent
  services sharing one store directory never tear an envelope.

Layout (v2, fingerprint-prefix sharded)
---------------------------------------
One flat directory stops scaling somewhere in the tens of thousands of
entries (every lookup lists siblings, every backup walks one dir), so the
results tier shards by fingerprint prefix — the standard content-addressed
trick (git objects, blob caches)::

    <results_root>/store.json                      # layout meta (version, depth)
    <results_root>/results/<fp[:depth]>/<fp>.json  # RunResult envelopes
    <root>/jobs/<job_id>.json                      # job records (tenant-private)
    <root>/jobs/<job_id>.events.ndjson             # one serialized event per line

``results_root`` defaults to ``root`` but may point elsewhere: the gateway
gives every tenant a private ``root`` (job records, event logs) while all
tenants share one ``results_root`` — identical specs submitted by different
tenants are **one** content-addressed entry, executed once.

Flat v1 stores (PR 4–7) are migrated transparently on first open: existing
``results/*.json`` files move into their shard directory and the layout meta
is written.  Envelope bytes are untouched — golden v1 envelopes and every
store-hit semantic survive the move.

Tiers, eviction, compaction
---------------------------
A warm in-memory LRU tier (``warm_capacity`` parsed envelopes) fronts the
disk tier; :class:`StoreStats` splits hits into ``warm_hits`` /
``disk_hits``.  With ``max_bytes`` set, :meth:`gc` (also run
opportunistically by :meth:`put`) evicts least-recently-*used* envelopes —
every disk hit refreshes the file's mtime — until the results tier fits,
and :meth:`compact` sweeps crashed writers' temp debris and empty shard
directories.  ``repro store stats`` / ``repro store gc`` expose both from
the shell.

Record repair semantics: a job record that cannot be parsed (empty,
truncated, or not a JSON object — e.g. a process that crashed between
reserving an id and writing the placeholder, or a reader racing that window)
is **skipped with a** :class:`StoreRecordWarning` by :meth:`ResultStore.load_jobs`
and treated as unknown by :meth:`ResultStore.load_job`, so one bad file never
takes down job listings for the whole store.  The next ``record_job`` for
that id rewrites the file atomically and repairs it.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.result import RunResult
from repro.api.specs import RunSpec
from repro.digest import stable_digest
from repro.io_utils import atomic_write_json, atomic_write_text

#: ``EngineSpec`` keys that steer execution but cannot change the payload
#: (see the determinism notes in :mod:`repro.engine.engine`); they are
#: excluded from the spec fingerprint.  ``kernel_backend`` qualifies because
#: every evaluation backend is bit-identical (enforced by the kernel parity
#: tests), so a numpy and a numba run of one spec share a store entry.
#: ``fusion_options`` qualifies because the frontier alignment search only
#: tunes how hard the scheduler looks, never the meaning of the workload.
EXECUTION_ONLY_ENGINE_KEYS = ("jobs", "executor", "cache", "kernel_backend", "fusion_options")

#: On-disk layout version written to the ``store.json`` meta file.
STORE_LAYOUT_VERSION = 2

#: Fingerprint-prefix characters used as the shard directory name.  Two hex
#: chars give 256 shards — flat-directory behaviour returns only past ~256x
#: the entry count that made v1 slow.
DEFAULT_SHARD_DEPTH = 2

#: Envelopes kept parsed in the warm tier by default.
DEFAULT_WARM_CAPACITY = 128

#: Meta file name, a sibling of the ``results/`` directory.
META_FILE = "store.json"


def spec_fingerprint(spec: RunSpec) -> str:
    """Content hash of the result-determining part of ``spec``."""
    payload = spec.to_dict()
    payload["engine"] = {
        key: value
        for key, value in payload["engine"].items()
        if key not in EXECUTION_ONLY_ENGINE_KEYS
    }
    return stable_digest(payload)


class StoreRecordWarning(RuntimeWarning):
    """An on-disk job record was unreadable and has been skipped."""


@dataclass
class StoreStats:
    """Hit/miss counters of one :class:`ResultStore` instance.

    ``hits`` remains the total (warm + disk) so pre-fabric consumers keep
    reading the same field; the tier split rides alongside.  ``fused_hits``
    counts the subset of hits whose spec requested fusion-group scheduling
    (``spec.workload.fusion`` set), so operators can see how much of the
    store traffic the fusion tier serves.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    warm_hits: int = 0
    disk_hits: int = 0
    fused_hits: int = 0
    evictions: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "warm_hits": self.warm_hits,
            "disk_hits": self.disk_hits,
            "fused_hits": self.fused_hits,
            "evictions": self.evictions,
        }


@dataclass
class GCReport:
    """What one :meth:`ResultStore.gc` / :meth:`ResultStore.compact` pass did."""

    evicted: list = field(default_factory=list)
    evicted_bytes: int = 0
    removed_temp_files: int = 0
    removed_empty_shards: int = 0
    remaining_entries: int = 0
    remaining_bytes: int = 0
    dry_run: bool = False

    def to_dict(self) -> dict:
        return {
            "evicted": list(self.evicted),
            "evicted_bytes": self.evicted_bytes,
            "removed_temp_files": self.removed_temp_files,
            "removed_empty_shards": self.removed_empty_shards,
            "remaining_entries": self.remaining_entries,
            "remaining_bytes": self.remaining_bytes,
            "dry_run": self.dry_run,
        }


class ResultStore:
    """Spec-fingerprint-addressed directory of finished run envelopes.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).  One store may
        be shared by many services and processes; every write is atomic.
    job_prefix:
        Optional prefix minted into every job id (``<prefix>job-000001-…``).
        The gateway uses it to give each tenant a distinct id namespace, so
        an id names its tenant even outside the tenant's store subtree.
    shard_depth:
        Fingerprint-prefix characters per shard directory.  Only consulted
        when this store *creates* the layout; an existing ``store.json``
        meta on disk wins, so every process sharing one results tree agrees.
    warm_capacity:
        Parsed envelopes kept in the in-memory LRU tier (0 disables it).
    max_bytes:
        Size bound of the results tier; ``None`` disables eviction.  When
        set, :meth:`put` opportunistically evicts least-recently-used
        envelopes to fit.
    results_root:
        Directory holding the shared ``results/`` tier (defaults to
        ``root``).  Point several stores' ``results_root`` at one directory
        to share envelopes cross-tenant while job records stay private.
    """

    def __init__(
        self,
        root: str | Path,
        job_prefix: str = "",
        *,
        shard_depth: int | None = None,
        warm_capacity: int = DEFAULT_WARM_CAPACITY,
        max_bytes: int | None = None,
        results_root: str | Path | None = None,
    ):
        self.root = Path(root)
        self.job_prefix = job_prefix
        self.results_root = Path(results_root) if results_root is not None else self.root
        self.max_bytes = max_bytes
        self.warm_capacity = warm_capacity
        self.stats = StoreStats()
        self._requested_shard_depth = shard_depth
        self._shard_depth: int | None = None  # resolved lazily from disk meta
        self._warm: OrderedDict[str, RunResult] = OrderedDict()
        self._warm_lock = threading.Lock()
        self._layout_lock = threading.Lock()
        self._alloc_lock = threading.Lock()
        #: Cached next job ordinal; ``None`` until the first allocation scans
        #: the directory once.  Cross-process safety still comes from the
        #: ``O_EXCL`` reservation loop, the cache only kills the per-submit
        #: O(n) re-glob.
        self._next_ordinal: int | None = None

    @property
    def results_dir(self) -> Path:
        return self.results_root / "results"

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def meta_path(self) -> Path:
        return self.results_root / META_FILE

    # ---------------------------------------------------------------- layout
    @property
    def shard_depth(self) -> int:
        """The resolved shard depth (reads/creates the on-disk meta)."""
        self._ensure_layout()
        assert self._shard_depth is not None
        return self._shard_depth

    def _ensure_layout(self) -> None:
        """Resolve the shard depth, migrating a flat v1 tree on first open.

        The on-disk ``store.json`` meta is authoritative — every process
        sharing one results tree must shard identically, so a constructor
        argument never overrides an existing meta.  A results directory with
        loose ``results/*.json`` files and no meta is a pre-fabric flat
        store: its files move (``os.replace``, atomic, content untouched)
        into their shard directories.  The migration is idempotent and safe
        to race: a file two migrators fight over is moved by whichever
        ``replace`` runs first and skipped by the loser.
        """
        if self._shard_depth is not None:
            return
        with self._layout_lock:
            if self._shard_depth is not None:
                return
            meta = self._read_meta()
            if meta is not None:
                self._shard_depth = int(meta.get("shard_depth", DEFAULT_SHARD_DEPTH))
                return
            depth = (
                DEFAULT_SHARD_DEPTH
                if self._requested_shard_depth is None
                else self._requested_shard_depth
            )
            if depth < 0 or depth > 8:
                raise ValueError(f"shard_depth must be in [0, 8], got {depth}")
            if depth and self.results_dir.is_dir():
                for path in list(self.results_dir.glob("*.json")):
                    shard = self.results_dir / path.stem[:depth]
                    shard.mkdir(parents=True, exist_ok=True)
                    try:
                        os.replace(path, shard / path.name)
                    except FileNotFoundError:
                        pass  # a racing migrator moved it first
            atomic_write_json(
                self.meta_path,
                {"layout_version": STORE_LAYOUT_VERSION, "shard_depth": depth},
            )
            self._shard_depth = depth

    def _read_meta(self) -> dict | None:
        try:
            meta = json.loads(self.meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return meta if isinstance(meta, dict) else None

    def result_path(self, fingerprint: str) -> Path:
        """The envelope path of ``fingerprint`` under the current layout."""
        depth = self.shard_depth
        if depth:
            return self.results_dir / fingerprint[:depth] / f"{fingerprint}.json"
        return self.results_dir / f"{fingerprint}.json"

    # Kept for pre-fabric callers; the public spelling is ``result_path``.
    def _result_path(self, fingerprint: str) -> Path:
        return self.result_path(fingerprint)

    def _iter_result_files(self):
        if not self.results_dir.is_dir():
            return
        yield from self.results_dir.rglob("*.json")

    # ------------------------------------------------------------- warm tier
    def _warm_get(self, fingerprint: str) -> RunResult | None:
        if self.warm_capacity <= 0:
            return None
        with self._warm_lock:
            result = self._warm.get(fingerprint)
            if result is not None:
                self._warm.move_to_end(fingerprint)
            return result

    def _warm_put(self, fingerprint: str, result: RunResult) -> None:
        if self.warm_capacity <= 0:
            return
        with self._warm_lock:
            self._warm[fingerprint] = result
            self._warm.move_to_end(fingerprint)
            while len(self._warm) > self.warm_capacity:
                self._warm.popitem(last=False)

    def _warm_drop(self, fingerprint: str) -> None:
        with self._warm_lock:
            self._warm.pop(fingerprint, None)

    # -------------------------------------------------------------- envelopes
    def load(self, fingerprint: str) -> RunResult | None:
        """Envelope stored under ``fingerprint`` (no hit/miss counting)."""
        warm = self._warm_get(fingerprint)
        if warm is not None:
            return warm
        path = self.result_path(fingerprint)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None  # miss, or evicted between exists-check and read
        result = RunResult.from_json(text)
        try:
            os.utime(path)  # refresh LRU recency for size-bounded eviction
        except OSError:
            pass
        self._warm_put(fingerprint, result)
        return result

    def get(self, spec: RunSpec, fingerprint: str | None = None) -> RunResult | None:
        """Stored result of ``spec`` (``None`` on a miss; counted either way)."""
        fingerprint = fingerprint or spec_fingerprint(spec)
        in_warm = self._warm_get(fingerprint) is not None
        result = self.load(fingerprint)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
            if in_warm:
                self.stats.warm_hits += 1
            else:
                self.stats.disk_hits += 1
            if spec.workload.fusion is not None:
                self.stats.fused_hits += 1
        return result

    def put(self, result: RunResult, fingerprint: str | None = None) -> Path:
        """Persist ``result`` under its spec's fingerprint, atomically."""
        fingerprint = fingerprint or spec_fingerprint(result.spec)
        self.stats.puts += 1
        path = atomic_write_json(self.result_path(fingerprint), result.to_dict())
        self._warm_put(fingerprint, result)
        if self.max_bytes is not None:
            self.gc()
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        """Membership test that does not touch the hit/miss counters."""
        return self.result_path(spec_fingerprint(spec)).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_result_files())

    # ------------------------------------------------------- gc / compaction
    def gc(self, max_bytes: int | None = None, dry_run: bool = False) -> GCReport:
        """Evict least-recently-used envelopes until the tier fits.

        ``max_bytes`` overrides the store's bound for this pass (``None``
        falls back to it; both ``None`` evicts nothing).  Recency is file
        mtime, refreshed on every disk hit, so hot entries survive.  With
        ``dry_run`` the report lists what *would* go without touching disk.
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        report = GCReport(dry_run=dry_run)
        entries = []
        total = 0
        for path in self._iter_result_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if bound is not None and total > bound:
            for mtime, size, path in sorted(entries):
                if total <= bound:
                    break
                report.evicted.append(path.stem)
                report.evicted_bytes += size
                total -= size
                if not dry_run:
                    self._warm_drop(path.stem)
                    path.unlink(missing_ok=True)
                    self.stats.evictions += 1
        report.remaining_entries = len(entries) - len(report.evicted)
        report.remaining_bytes = total
        return report

    def compact(self, dry_run: bool = False) -> GCReport:
        """Sweep crashed writers' temp debris and empty shard directories.

        Temp files (``.*.tmp`` siblings left by a writer that died between
        creating and publishing its scratch file) older than a minute are
        removed — younger ones may belong to an in-flight write.  Shard
        directories emptied by eviction are pruned so ``stats`` histograms
        reflect reality.
        """
        import time

        report = GCReport(dry_run=dry_run)
        if not self.results_dir.is_dir():
            return report
        now = time.time()
        for path in self.results_dir.rglob(".*.tmp"):
            try:
                if now - path.stat().st_mtime < 60:
                    continue
            except OSError:
                continue
            report.removed_temp_files += 1
            if not dry_run:
                path.unlink(missing_ok=True)
        for path in sorted(self.results_dir.iterdir(), reverse=True):
            if path.is_dir() and not any(path.iterdir()):
                report.removed_empty_shards += 1
                if not dry_run:
                    try:
                        path.rmdir()
                    except OSError:
                        pass
        entries = list(self._iter_result_files())
        report.remaining_entries = len(entries)
        report.remaining_bytes = sum(p.stat().st_size for p in entries if p.exists())
        return report

    def stats_summary(self) -> dict:
        """One JSON-ready snapshot: layout, sizes, shard histogram, tiers."""
        histogram: dict[str, int] = {}
        total_bytes = 0
        entries = 0
        for path in self._iter_result_files():
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            shard = path.parent.name if path.parent != self.results_dir else "."
            histogram[shard] = histogram.get(shard, 0) + 1
        with self._warm_lock:
            warm_entries = len(self._warm)
        return {
            "root": str(self.root),
            "results_root": str(self.results_root),
            "layout_version": STORE_LAYOUT_VERSION,
            "shard_depth": self.shard_depth,
            "entries": entries,
            "bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "shards": dict(sorted(histogram.items())),
            "warm_tier": {
                "capacity": self.warm_capacity,
                "entries": warm_entries,
            },
            "counters": self.stats.to_dict(),
            "jobs": sum(1 for _ in self.jobs_dir.glob(f"{self.job_prefix}job-*.json"))
            if self.jobs_dir.is_dir()
            else 0,
        }

    # ------------------------------------------------------------ job records
    def _scan_next_ordinal(self) -> int:
        """One directory scan for the highest minted ordinal, plus one."""
        highest = 0
        start = len(self.job_prefix) + len("job-")
        for path in self.jobs_dir.glob(f"{self.job_prefix}job-*.json"):
            digits = path.name[start : start + 6]
            if digits.isdigit():
                highest = max(highest, int(digits))
        return highest + 1

    def allocate_job_id(self, fingerprint: str) -> str:
        """Mint the next job id: a 1-based ordinal plus the spec fingerprint.

        Ids sort chronologically (``job-000001-…``, ``job-000002-…``) and
        carry enough of the fingerprint to locate the result by eye.  The id
        is *reserved* by exclusively creating its record file, so concurrent
        services sharing one store directory can never mint the same id and
        overwrite each other's records (``O_EXCL`` arbitrates; losers retry
        with the next ordinal).  The next ordinal is cached per store
        instance — the directory is scanned once, not on every submit — and
        the ``O_EXCL`` loop re-synchronizes the cache whenever another
        process minted ids in the meantime.
        """
        with self._alloc_lock:
            self.jobs_dir.mkdir(parents=True, exist_ok=True)
            if self._next_ordinal is None:
                self._next_ordinal = self._scan_next_ordinal()
            index = self._next_ordinal
            while True:
                job_id = f"{self.job_prefix}job-{index:06d}-{fingerprint[:12]}"
                try:
                    with open(self.jobs_dir / f"{job_id}.json", "x") as handle:
                        handle.write("{}\n")  # placeholder until record_job runs
                except FileExistsError:
                    index += 1
                    continue
                self._next_ordinal = index + 1
                return job_id

    def record_job(self, record: dict) -> Path:
        """Persist one job record (see ``Job.to_dict``), atomically."""
        return atomic_write_json(self.jobs_dir / f"{record['job_id']}.json", record)

    def _read_record(self, path: Path) -> dict | None:
        """Parse one record file; unreadable files warn and read as ``None``.

        An empty or truncated file is what a crash between the ``O_EXCL``
        reservation and the placeholder write leaves behind (or what a reader
        racing that window observes); it must never crash a listing.
        """
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            warnings.warn(
                f"skipping unreadable job record {path}: {error}",
                StoreRecordWarning,
                stacklevel=3,
            )
            return None
        if not isinstance(record, dict) or not record.get("job_id"):
            return None  # freshly reserved placeholder
        return record

    def load_jobs(self) -> list[dict]:
        """Every readable job record, sorted by job id (= submission order).

        Placeholders and unreadable files are skipped (the latter with a
        :class:`StoreRecordWarning`), so a torn record never takes down
        ``repro jobs`` for the whole store.
        """
        if not self.jobs_dir.is_dir():
            return []
        records = []
        for path in sorted(self.jobs_dir.glob(f"{self.job_prefix}job-*.json")):
            record = self._read_record(path)
            if record is not None:
                records.append(record)
        return records

    def load_job(self, job_id: str) -> dict | None:
        """One persisted job record, or ``None`` when unknown or unreadable."""
        path = self.jobs_dir / f"{job_id}.json"
        if not path.exists():
            return None
        return self._read_record(path)

    def events_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.events.ndjson"

    def record_events(self, job_id: str, events) -> Path:
        """Persist a job's full event log as NDJSON (one event per line)."""
        lines = "".join(json.dumps(event.to_dict()) + "\n" for event in events)
        return atomic_write_text(self.events_path(job_id), lines)
