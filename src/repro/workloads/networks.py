"""The DNN workloads evaluated in the paper.

Figure 6 / Figure 10 of the paper label every layer with the shorthand
``R_P_C_K_Stride`` (with ``S = R`` and ``Q = P``).  The tables below list those
exact layer strings for the four evaluated workloads:

* **AlexNet** (8 unique layers),
* **ResNet-50** (23 unique layers),
* **ResNeXt-50 (32x4d)** (25 unique layers),
* **DeepBench** convolution kernels (OCR + face recognition, 9 layers).

Each function returns fresh :class:`~repro.workloads.layer.Layer` objects so
callers can mutate-by-replacement without affecting the module tables.
"""

from __future__ import annotations

from repro.workloads.layer import Layer, conv_layer
from repro.workloads.problem import ProblemLayer, attention_av, attention_qk, matmul, softmax

#: ``R_P_C_K_Stride`` strings, in the order they appear on the paper's x-axes.
ALEXNET_LAYER_STRINGS: tuple[str, ...] = (
    "11_55_3_64_4",
    "5_27_64_192_1",
    "3_13_192_384_1",
    "3_13_384_256_1",
    "3_13_256_256_1",
    "1_1_9216_4096_1",
    "1_1_4096_4096_1",
    "1_1_4096_1000_1",
)

RESNET50_LAYER_STRINGS: tuple[str, ...] = (
    "7_112_3_64_2",
    "1_56_64_64_1",
    "3_56_64_64_1",
    "1_56_64_256_1",
    "1_56_256_64_1",
    "1_56_256_128_1",
    "3_28_128_128_2",
    "1_28_128_512_1",
    "1_28_256_512_2",
    "1_28_512_128_1",
    "1_28_512_256_1",
    "3_14_256_256_2",
    "1_14_256_1024_1",
    "1_14_512_1024_2",
    "1_14_1024_256_1",
    "3_14_256_256_1",
    "1_14_1024_512_1",
    "3_7_512_512_2",
    "1_7_512_2048_1",
    "1_7_1024_2048_2",
    "1_7_2048_512_1",
    "3_7_512_512_1",
    "1_1_2048_1000_1",
)

RESNEXT50_LAYER_STRINGS: tuple[str, ...] = (
    "7_112_3_64_2",
    "1_56_64_128_1",
    "3_56_4_128_1",
    "1_56_128_256_1",
    "1_56_64_256_1",
    "1_56_256_128_1",
    "1_56_256_256_1",
    "3_28_8_256_2",
    "1_28_256_512_1",
    "1_28_256_512_2",
    "1_28_512_256_1",
    "3_28_8_256_1",
    "1_28_512_512_1",
    "3_14_16_512_2",
    "1_14_512_1024_1",
    "1_14_512_1024_2",
    "1_14_1024_512_1",
    "3_14_16_512_1",
    "1_14_1024_1024_1",
    "3_7_32_1024_2",
    "1_7_1024_2048_1",
    "1_7_1024_2048_2",
    "1_7_2048_1024_1",
    "3_7_32_1024_1",
    "1_1_2048_1000_1",
)

DEEPBENCH_LAYER_STRINGS: tuple[str, ...] = (
    "3_480_1_16_1",
    "3_240_16_32_1",
    "3_120_32_64_1",
    "3_60_64_128_1",
    "3_108_3_64_2",
    "3_54_64_64_1",
    "3_27_128_128_1",
    "3_14_128_256_1",
    "3_7_256_512_1",
)

_NETWORK_TABLES: dict[str, tuple[str, ...]] = {
    "alexnet": ALEXNET_LAYER_STRINGS,
    "resnet50": RESNET50_LAYER_STRINGS,
    "resnext50": RESNEXT50_LAYER_STRINGS,
    "deepbench": DEEPBENCH_LAYER_STRINGS,
}

#: Display names used in paper figures, keyed by the internal network id.
NETWORK_DISPLAY_NAMES: dict[str, str] = {
    "alexnet": "AlexNet",
    "resnet50": "ResNet-50",
    "resnext50": "ResNeXt-50 (32x4d)",
    "deepbench": "DeepBench",
}


def layer_from_name(name: str, batch: int = 1) -> Layer:
    """Parse a paper-style ``R_P_C_K_Stride`` layer string into a :class:`Layer`."""
    parts = name.split("_")
    if len(parts) != 5:
        raise ValueError(f"expected an R_P_C_K_Stride string, got {name!r}")
    r, p, c, k, stride = (int(x) for x in parts)
    return conv_layer(r=r, p=p, c=c, k=k, stride=stride, n=batch, name=name)


def _layers_for(network: str, batch: int) -> list[Layer]:
    try:
        strings = _NETWORK_TABLES[network]
    except KeyError:
        raise KeyError(
            f"unknown network {network!r}; available: {sorted(_NETWORK_TABLES)}"
        ) from None
    return [layer_from_name(s, batch=batch) for s in strings]


def alexnet_layers(batch: int = 1) -> list[Layer]:
    """The 8 unique AlexNet layers evaluated in the paper."""
    return _layers_for("alexnet", batch)


def resnet50_layers(batch: int = 1) -> list[Layer]:
    """The 23 unique ResNet-50 layers evaluated in the paper."""
    return _layers_for("resnet50", batch)


def resnext50_layers(batch: int = 1) -> list[Layer]:
    """The 25 unique ResNeXt-50 (32x4d) layers evaluated in the paper."""
    return _layers_for("resnext50", batch)


def deepbench_layers(batch: int = 1) -> list[Layer]:
    """The 9 DeepBench (OCR + face recognition) convolution layers."""
    return _layers_for("deepbench", batch)


def workload_suite(batch: int = 1) -> dict[str, list[Layer]]:
    """All four evaluated workloads keyed by network id, in paper order."""
    return {network: _layers_for(network, batch) for network in _NETWORK_TABLES}


# -- Transformer-block presets (tensor-problem IR workloads) ------------------

def transformer_block_layers(
    seq: int,
    hidden: int,
    heads: int,
    ffn: int,
    batch: int = 1,
    prefix: str = "block",
) -> list[ProblemLayer]:
    """One transformer encoder/decoder block as a network of tensor problems.

    Eight operators: the Q/K/V projections (three identical matmuls — the
    engine de-duplicates them into one solve), the two attention
    contractions, the output projection and the two FFN matmuls.  All are
    first-class :class:`~repro.workloads.problem.ProblemLayer` objects, so
    every scheduler (including CoSA's MIP path) and the batched cost model
    consume them natively.
    """
    if hidden % heads != 0:
        raise ValueError(f"hidden size {hidden} is not divisible by {heads} heads")
    head_dim = hidden // heads
    return [
        matmul(m=seq, n=hidden, k=hidden, batch=batch, name=f"{prefix}_q_proj"),
        matmul(m=seq, n=hidden, k=hidden, batch=batch, name=f"{prefix}_k_proj"),
        matmul(m=seq, n=hidden, k=hidden, batch=batch, name=f"{prefix}_v_proj"),
        attention_qk(seq=seq, heads=heads, head_dim=head_dim, batch=batch, name=f"{prefix}_attn_qk"),
        attention_av(seq=seq, heads=heads, head_dim=head_dim, batch=batch, name=f"{prefix}_attn_av"),
        matmul(m=seq, n=hidden, k=hidden, batch=batch, name=f"{prefix}_out_proj"),
        matmul(m=seq, n=ffn, k=hidden, batch=batch, name=f"{prefix}_ffn_up"),
        matmul(m=seq, n=hidden, k=ffn, batch=batch, name=f"{prefix}_ffn_down"),
    ]


def transformer_block_fused_layers(
    seq: int,
    hidden: int,
    heads: int,
    ffn: int,
    batch: int = 1,
    prefix: str = "block",
) -> list[ProblemLayer]:
    """The fusion-aware transformer block: nine operators with explicit softmax.

    Identical to :func:`transformer_block_layers` except the softmax between
    the two attention contractions is a first-class operator, so the
    QK → softmax → AV chain can be declared (and scheduled) as one
    :class:`~repro.fusion.group.FusionGroup` with both intermediates pinned
    on-chip instead of round-tripping through DRAM.
    """
    if hidden % heads != 0:
        raise ValueError(f"hidden size {hidden} is not divisible by {heads} heads")
    head_dim = hidden // heads
    return [
        matmul(m=seq, n=hidden, k=hidden, batch=batch, name=f"{prefix}_q_proj"),
        matmul(m=seq, n=hidden, k=hidden, batch=batch, name=f"{prefix}_k_proj"),
        matmul(m=seq, n=hidden, k=hidden, batch=batch, name=f"{prefix}_v_proj"),
        attention_qk(seq=seq, heads=heads, head_dim=head_dim, batch=batch, name=f"{prefix}_attn_qk"),
        softmax(seq=seq, heads=heads, batch=batch, name=f"{prefix}_softmax"),
        attention_av(seq=seq, heads=heads, head_dim=head_dim, batch=batch, name=f"{prefix}_attn_av"),
        matmul(m=seq, n=hidden, k=hidden, batch=batch, name=f"{prefix}_out_proj"),
        matmul(m=seq, n=ffn, k=hidden, batch=batch, name=f"{prefix}_ffn_up"),
        matmul(m=seq, n=hidden, k=ffn, batch=batch, name=f"{prefix}_ffn_down"),
    ]


def bert_base_block_layers(batch: int = 1, seq: int = 128) -> list[ProblemLayer]:
    """One BERT-base encoder block (hidden 768, 12 heads, FFN 3072, seq 128)."""
    return transformer_block_layers(
        seq=seq, hidden=768, heads=12, ffn=3072, batch=batch, prefix="bert_base"
    )


def gpt2_small_block_layers(batch: int = 1, seq: int = 1024) -> list[ProblemLayer]:
    """One GPT-2-small decoder block (hidden 768, 12 heads, FFN 3072, seq 1024)."""
    return transformer_block_layers(
        seq=seq, hidden=768, heads=12, ffn=3072, batch=batch, prefix="gpt2_small"
    )


def bert_base_block_fused_layers(batch: int = 1, seq: int = 128) -> list[ProblemLayer]:
    """The fusion-aware BERT-base block (explicit softmax, nine operators)."""
    return transformer_block_fused_layers(
        seq=seq, hidden=768, heads=12, ffn=3072, batch=batch, prefix="bert_base"
    )


def gpt2_small_block_fused_layers(batch: int = 1, seq: int = 1024) -> list[ProblemLayer]:
    """The fusion-aware GPT-2-small block (explicit softmax, nine operators)."""
    return transformer_block_fused_layers(
        seq=seq, hidden=768, heads=12, ffn=3072, batch=batch, prefix="gpt2_small"
    )


# -- Layers used by the motivation / ablation figures ------------------------

def figure1_layer(batch: int = 1) -> Layer:
    """ResNet-50 3x3 layer used in Fig. 1 (C = K = 256, P = Q = 14)."""
    return conv_layer(r=3, p=14, c=256, k=256, stride=1, n=batch, name="fig1_3_14_256_256_1")


def figure3_layer(batch: int = 1) -> Layer:
    """Layer of Fig. 3 (permutation study): R=S=3, P=Q=8, C=32, K=1024."""
    return conv_layer(r=3, p=8, c=32, k=1024, stride=1, n=batch, name="fig3_3_8_32_1024_1")


def figure4_layer(batch: int = 1) -> Layer:
    """Layer of Fig. 4 (spatial-mapping study): R=S=1, P=Q=16, C=256, K=1024."""
    return conv_layer(r=1, p=16, c=256, k=1024, stride=1, n=batch, name="fig4_1_16_256_1024_1")


def figure8_layer(batch: int = 1) -> Layer:
    """ResNet-50 layer 3_7_512_512_1 used in the Fig. 8 objective breakdown."""
    return layer_from_name("3_7_512_512_1", batch=batch)


def listing1_layer() -> Layer:
    """The small example layer of Listing 1 (R=S=3, P=Q=28, C=8, K=4, N=3)."""
    return Layer(r=3, s=3, p=28, q=28, c=8, k=4, n=3, stride=1, name="listing1")
