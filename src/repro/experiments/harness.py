"""Shared harness: run the three schedulers on layers and compare them.

Every speedup figure of the paper (Figs. 6, 7, 9, 10) has the same shape:
for each layer, generate a schedule with Random search, the Timeloop-Hybrid
mapper and CoSA, evaluate all three on one evaluation platform (the
analytical "Timeloop" model or the NoC simulator) and report per-layer and
geometric-mean speedups relative to Random.  This module implements that
pipeline once, as a thin wrapper over the
:class:`~repro.engine.engine.SchedulingEngine`: one engine per scheduler
drives the layers (optionally in parallel and against a shared mapping
cache), and the harness only evaluates the resulting mappings on the chosen
platform and shapes the comparison rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.arch.accelerator import Accelerator
from repro.baselines import RandomScheduler, TimeloopHybridScheduler
from repro.core.objectives import ObjectiveWeights
from repro.core.scheduler import CoSAScheduler
from repro.engine import EngineStats, MappingCache, SchedulingEngine
from repro.mapping.mapping import Mapping
from repro.model.cost import CostModel
from repro.noc.simulator import NoCSimulator
from repro.workloads.layer import Layer


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 for an empty input)."""
    values = [v for v in values if v > 0 and math.isfinite(v)]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class ComparisonConfig:
    """Configuration of a scheduler comparison run.

    Attributes
    ----------
    accelerator:
        Target architecture.
    platform:
        ``"timeloop"`` evaluates latency/energy with the analytical model;
        ``"noc"`` evaluates latency with the NoC simulator.
    metric:
        Search metric for the baselines (``latency`` or ``energy``).
    cosa_weights:
        Objective weights handed to CoSA (``None`` = calibrated defaults).
    hybrid_threads / hybrid_termination / hybrid_max_evaluations:
        Budget of the Timeloop-Hybrid mapper (scaled-down defaults; see
        :meth:`~repro.baselines.timeloop_hybrid.TimeloopHybridScheduler.paper_settings`).
    random_valid:
        Valid samples collected by the Random baseline (5 in the paper).
    seed:
        Base random seed shared by the baselines.
    eval_batch_size:
        Vectorized evaluation batch size for the search baselines (outcome
        invariant — see :mod:`repro.model.batch`; ``None``/1 forces the
        scalar reference path).
    time_budget_seconds:
        Optional per-layer wall-clock budget for the search baselines, so
        time-to-solution comparisons are apples-to-apples.
    """

    accelerator: Accelerator
    platform: str = "timeloop"
    metric: str = "latency"
    cosa_weights: ObjectiveWeights | None = None
    hybrid_threads: int = 2
    hybrid_termination: int = 64
    hybrid_max_evaluations: int = 800
    random_valid: int = 5
    seed: int = 0
    eval_batch_size: int | None = 64
    time_budget_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.platform not in ("timeloop", "noc"):
            raise ValueError(f"unknown platform {self.platform!r}")


@dataclass
class LayerComparison:
    """Per-layer result of one comparison run (one bar group of Fig. 6/10)."""

    layer: str
    random_value: float
    hybrid_value: float
    cosa_value: float
    random_time: float = 0.0
    hybrid_time: float = 0.0
    cosa_time: float = 0.0
    random_samples: int = 0
    hybrid_samples: int = 0
    hybrid_evaluations: int = 0

    @property
    def hybrid_speedup(self) -> float:
        """Timeloop-Hybrid improvement over Random (the paper's middle bars)."""
        if self.hybrid_value <= 0:
            return 0.0
        return self.random_value / self.hybrid_value

    @property
    def cosa_speedup(self) -> float:
        """CoSA improvement over Random (the paper's right bars)."""
        if self.cosa_value <= 0:
            return 0.0
        return self.random_value / self.cosa_value


@dataclass
class SpeedupSummary:
    """Geometric-mean summary of a set of :class:`LayerComparison` rows.

    ``engine_stats`` carries per-scheduler effort counters (solves, cache
    hits/misses, de-duplication reuses) of the engines that produced the
    comparison, keyed by scheduler name.
    """

    label: str
    comparisons: list[LayerComparison] = field(default_factory=list)
    engine_stats: dict[str, EngineStats] = field(default_factory=dict)

    @property
    def hybrid_geomean(self) -> float:
        return geometric_mean(c.hybrid_speedup for c in self.comparisons)

    @property
    def cosa_geomean(self) -> float:
        return geometric_mean(c.cosa_speedup for c in self.comparisons)

    @property
    def cosa_vs_hybrid(self) -> float:
        """CoSA speedup relative to Timeloop-Hybrid."""
        if self.hybrid_geomean <= 0:
            return 0.0
        return self.cosa_geomean / self.hybrid_geomean


class _Evaluator:
    """Evaluates mappings on the configured platform and metric."""

    def __init__(self, config: ComparisonConfig):
        self.config = config
        self._cost_model = CostModel(config.accelerator)
        self._noc = NoCSimulator(config.accelerator) if config.platform == "noc" else None

    def __call__(self, mapping: Mapping | None) -> float:
        if mapping is None:
            return float("inf")
        cost = self._cost_model.evaluate(mapping)
        if not cost.valid:
            return float("inf")
        if self.config.platform == "noc":
            return self._noc.simulate(mapping).latency
        return cost.energy if self.config.metric == "energy" else cost.latency


def build_schedulers(config: ComparisonConfig):
    """Instantiate the Random, Timeloop-Hybrid and CoSA schedulers of a run."""
    random_scheduler = RandomScheduler(
        config.accelerator,
        num_valid=config.random_valid,
        metric=config.metric,
        seed=config.seed,
        eval_batch_size=config.eval_batch_size,
        time_budget_seconds=config.time_budget_seconds,
    )
    hybrid_scheduler = TimeloopHybridScheduler(
        config.accelerator,
        num_threads=config.hybrid_threads,
        termination_condition=config.hybrid_termination,
        max_evaluations=config.hybrid_max_evaluations,
        metric=config.metric,
        seed=config.seed,
        eval_batch_size=config.eval_batch_size,
        time_budget_seconds=config.time_budget_seconds,
    )
    cosa_scheduler = CoSAScheduler(config.accelerator, weights=config.cosa_weights)
    return random_scheduler, hybrid_scheduler, cosa_scheduler


def compare_on_layer(
    layer: Layer,
    config: ComparisonConfig,
    schedulers=None,
    evaluator: Callable[[Mapping | None], float] | None = None,
) -> LayerComparison:
    """Run all three schedulers on ``layer`` and evaluate them on the platform."""
    summary = compare_on_network(
        layer.name or layer.canonical_name,
        [layer],
        config,
        schedulers=schedulers,
        evaluator=evaluator,
    )
    return summary.comparisons[0]


def compare_on_network(
    label: str,
    layers: Iterable[Layer],
    config: ComparisonConfig,
    schedulers=None,
    evaluator: Callable[[Mapping | None], float] | None = None,
    jobs: int = 1,
    cache: MappingCache | None = None,
) -> SpeedupSummary:
    """Run the comparison over every layer of a network.

    Parameters
    ----------
    jobs:
        Concurrent solves per scheduler (layers are independent; see
        :meth:`~repro.engine.engine.SchedulingEngine.schedule_network`).
    cache:
        Optional shared :class:`~repro.engine.cache.MappingCache`; the cache
        key includes the scheduler identity, so one cache serves all three
        schedulers at once.
    """
    layers = list(layers)
    scheduler_triple = schedulers or build_schedulers(config)
    evaluate = evaluator or _Evaluator(config)

    # Positional, not name-keyed: caller-supplied triples may repeat a
    # scheduler kind (e.g. two differently-seeded Random instances).
    summary = SpeedupSummary(label=label)
    networks = []
    for scheduler in scheduler_triple:
        engine = SchedulingEngine(scheduler, cache=cache, evaluate_metrics=False)
        network = engine.schedule_network(layers, jobs=jobs, label=label)
        networks.append(network)
        stats_key = scheduler.name
        while stats_key in summary.engine_stats:
            stats_key += "+"
        summary.engine_stats[stats_key] = network.stats

    random_net, hybrid_net, cosa_net = networks
    for index, layer in enumerate(layers):
        random_outcome = random_net.outcomes[index]
        hybrid_outcome = hybrid_net.outcomes[index]
        cosa_outcome = cosa_net.outcomes[index]
        summary.comparisons.append(
            LayerComparison(
                layer=layer.name or layer.canonical_name,
                random_value=evaluate(random_outcome.mapping),
                hybrid_value=evaluate(hybrid_outcome.mapping),
                cosa_value=evaluate(cosa_outcome.mapping),
                random_time=random_outcome.solve_time_seconds,
                hybrid_time=hybrid_outcome.solve_time_seconds,
                cosa_time=cosa_outcome.solve_time_seconds,
                random_samples=random_outcome.num_sampled,
                hybrid_samples=hybrid_outcome.num_sampled,
                hybrid_evaluations=hybrid_outcome.num_evaluated,
            )
        )
    return summary
