"""Unified scheduling engine: one protocol, parallel solves, a mapping cache.

This package is the seam between individual schedulers (CoSA's one-shot MIP,
the search baselines) and everything that consumes schedules at scale (the
experiment harness, the CLI, services):

* :mod:`repro.engine.outcome` — the :class:`Scheduler` protocol and the
  scheduler-agnostic :class:`ScheduleOutcome` result,
* :mod:`repro.engine.cache` — the content-addressed :class:`MappingCache`
  (in-memory LRU + optional JSON persistence),
* :mod:`repro.engine.engine` — the :class:`SchedulingEngine` driving any
  scheduler over networks and suites with ``jobs=N`` parallelism and
  identical-layer de-duplication.

Quickstart::

    from repro import simba_like
    from repro.core import CoSAScheduler
    from repro.engine import MappingCache, SchedulingEngine
    from repro.workloads import resnet50_layers

    engine = SchedulingEngine(CoSAScheduler(simba_like()), cache=MappingCache())
    network = engine.schedule_network(resnet50_layers(), jobs=4)
    print(network.stats.to_dict())          # solves / cache hits / dedup reuses
    print(network.outcomes[0].metrics)      # latency / energy / edp
"""

from repro.engine.cache import CacheStats, MappingCache, cache_key
from repro.engine.engine import (
    EngineStats,
    LayerReport,
    NetworkSchedule,
    SchedulingEngine,
    SuiteSchedule,
)
from repro.engine.outcome import ScheduleOutcome, Scheduler

__all__ = [
    "CacheStats",
    "MappingCache",
    "cache_key",
    "EngineStats",
    "LayerReport",
    "NetworkSchedule",
    "SchedulingEngine",
    "SuiteSchedule",
    "ScheduleOutcome",
    "Scheduler",
]
