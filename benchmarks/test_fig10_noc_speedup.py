"""Fig. 10: per-network speedup over Random search on the NoC simulator."""

from bench_utils import layers_per_network, save_report

from repro.experiments.figures import fig10_noc_speedup
from repro.api import geometric_mean
from repro.experiments.reporting import format_speedup_rows, format_table


def test_fig10_noc_speedup(benchmark):
    summaries = benchmark.pedantic(
        fig10_noc_speedup,
        kwargs={"layers_per_network": layers_per_network(3)},
        rounds=1,
        iterations=1,
    )

    per_layer_rows = [
        [s.label, c.layer, c.hybrid_speedup, c.cosa_speedup]
        for s in summaries
        for c in s.comparisons
    ]
    overall_cosa = geometric_mean(s.cosa_geomean for s in summaries)
    overall_hybrid = geometric_mean(s.hybrid_geomean for s in summaries)
    report = format_speedup_rows(summaries, title="Fig. 10 - speedup vs Random (NoC simulator)")
    report += "\n\n" + format_table(
        ["network", "layer", "Timeloop Hybrid", "CoSA"], per_layer_rows, title="Per-layer speedups"
    )
    report += f"\n\nOVERALL geomean: Random=1.00  Hybrid={overall_hybrid:.2f}  CoSA={overall_cosa:.2f}"
    save_report("fig10_noc_speedup", report)

    # Paper shape: on the communication-sensitive platform CoSA keeps a clear
    # advantage over Random search (3.3x there).  The CoSA-vs-Hybrid ordering
    # is reported (and discussed in EXPERIMENTS.md) but not asserted: on the
    # quick layer subset the two trade places on the DeepBench layers, where
    # the log-space traffic objective cannot distinguish unicasting a large
    # tensor from unicasting a small one.
    assert overall_cosa > 1.0
    assert any(s.cosa_geomean >= s.hybrid_geomean for s in summaries)
