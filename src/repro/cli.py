"""Command-line interface.

Schedule a layer from the shell and inspect the result without writing any
Python::

    repro schedule 3_7_512_512_1                 # CoSA, baseline arch
    repro schedule 3_7_512_512_1 --arch pe-8x8   # Fig. 9a variant
    repro schedule 3_7_512_512_1 --scheduler hybrid --platform noc
    repro schedule 1_7_512_2048_1 --scheduler gpu --arch gpu-k80
    repro schedule --fusion attention-block \
        --fusion-option seq=64 --fusion-option heads=4 \
        --fusion-option head_dim=32                  # fused QK/softmax/AV chain
    repro compare resnet50 --layers 4 --jobs 4   # three-scheduler comparison
    repro suite --jobs 4 --cache mappings.json   # CoSA over all four networks
    repro run examples/specs/resnet50_compare.json --json
    repro run spec.json --follow                 # stream NDJSON events live
    repro submit spec.json                       # job into the result store
    repro jobs                                   # list recorded jobs
    repro result job-000001-abcdef123456         # fetch a stored envelope
    repro serve --port 8123 --keys keys.json     # multi-tenant HTTP gateway
    repro submit spec.json --server http://127.0.0.1:8123 --tenant acme \
        --api-key k1                             # same verbs over the wire
    repro registry --json                        # stable, scriptable listing
    repro networks                               # list evaluated workloads

(``python -m repro.cli`` works identically when the package is not
installed.)  Every subcommand is a thin argument translator over the
declarative facade: it builds a :class:`~repro.api.specs.RunSpec` and hands
it to :func:`repro.api.run`, so anything registered through the
:mod:`repro.api.registry` plugin registries — schedulers, architectures,
platforms, workloads — is immediately reachable from the shell.  ``--json``
output is the stamped :class:`~repro.api.result.RunResult` envelope
(``schema_version``, the resolved spec, and the payload), identical whether
the run came from flags or from a spec file.  All subcommands route their
diagnostics through a single summary path: nothing is printed until the run
is complete, so a failed run produces an error on stderr and exit code 1
instead of a half-written report.  The deliberate exception is ``run
--follow``, which streams the job's typed events (see
:mod:`repro.api.events`) to stdout as NDJSON while it executes.

``submit`` / ``jobs`` / ``result`` are the service-side workflow: ``submit``
executes a spec as a :class:`~repro.api.service.SchedulingService` job
recorded in an on-disk result store (resubmitting an identical spec is a
store hit that skips every scheduler), ``jobs`` lists the recorded jobs and
``result`` prints a finished job's stored envelope.  With ``--server URL``
the same three verbs go over HTTP to a ``repro serve`` gateway instead
(``--tenant`` picks the namespace, ``--api-key`` authenticates); ``repro
serve`` hosts the multi-tenant gateway itself (see ``docs/gateway.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import api
from repro.api import (
    ALL_REGISTRIES,
    ArchSpec,
    EngineSpec,
    PlatformSpec,
    RunSpec,
    SchedulerSpec,
    WorkloadSpec,
    architectures,
    platforms,
    schedulers,
    workloads,
)


#: Default root of the on-disk result store used by the service subcommands
#: (``submit`` / ``jobs`` / ``result``); override with ``--store``.
DEFAULT_STORE = ".repro-store"


def _package_version() -> str:
    """The installed distribution version, falling back to the source tree's."""
    from importlib import metadata

    try:
        return metadata.version("cosa-repro")
    except metadata.PackageNotFoundError:
        from repro import __version__

        return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    schedule = sub.add_parser(
        "schedule", help="schedule one layer (or a fusion group) and report its cost"
    )
    schedule.add_argument(
        "layer", nargs="?", default=None,
        help="layer in R_P_C_K_Stride form, e.g. 3_7_512_512_1 (optional with --fusion)",
    )
    schedule.add_argument("--arch", default="baseline-4x4", choices=sorted(architectures.available()))
    schedule.add_argument(
        "--scheduler", default="cosa", choices=sorted(schedulers.available()),
        help="which scheduler generates the mapping",
    )
    schedule.add_argument(
        "--platform", default="timeloop", choices=sorted(platforms.available()),
        help="evaluation platform for the resulting schedule",
    )
    schedule.add_argument("--batch", type=int, default=1, help="batch size N")
    schedule.add_argument("--save", metavar="FILE", help="write the mapping to a JSON file")
    _add_fusion_arguments(schedule)
    _add_engine_arguments(schedule)

    compare = sub.add_parser(
        "compare", help="compare Random / Timeloop-Hybrid / CoSA on a network"
    )
    compare.add_argument("network", choices=sorted(workloads.available()), help="workload to compare on")
    compare.add_argument("--arch", default="baseline-4x4", choices=sorted(architectures.available()))
    compare.add_argument(
        "--platform", default="timeloop", choices=sorted(platforms.available()),
        help="evaluation platform for the schedules",
    )
    compare.add_argument("--metric", default="latency", choices=("latency", "energy", "edp"))
    compare.add_argument("--layers", type=int, default=None, help="only the first N layers")
    compare.add_argument("--batch", type=int, default=1, help="batch size N")
    compare.add_argument("--seed", type=int, default=0, help="base seed for the baselines")
    _add_engine_arguments(compare)

    suite = sub.add_parser("suite", help="schedule every network of the evaluated suite")
    suite.add_argument("--arch", default="baseline-4x4", choices=sorted(architectures.available()))
    suite.add_argument(
        "--scheduler", default="cosa", choices=sorted(schedulers.available()),
        help="which scheduler runs the suite",
    )
    suite.add_argument("--layers", type=int, default=None, help="only the first N layers per network")
    suite.add_argument("--batch", type=int, default=1, help="batch size N")
    _add_engine_arguments(suite)

    run = sub.add_parser("run", help="execute a declarative RunSpec from a JSON file")
    run.add_argument("spec", help="path to a spec file (see docs/api.md for the schema)")
    run.add_argument("--json", action="store_true", help="machine-readable output")
    run.add_argument(
        "--follow", action="store_true",
        help="stream the job's events to stdout as NDJSON while it executes "
        "(the final run_finished line carries the full result envelope)",
    )
    _add_fusion_arguments(run)

    submit = sub.add_parser(
        "submit", help="submit a RunSpec as a service job recorded in the result store"
    )
    submit.add_argument("spec", help="path to a spec file (see docs/api.md for the schema)")
    submit.add_argument("--json", action="store_true", help="print the full job record")
    submit.add_argument(
        "--priority", default="interactive", choices=("interactive", "batch"),
        help="queue lane on a priority-aware server (default: interactive)",
    )
    _add_store_argument(submit)
    _add_server_arguments(submit)

    jobs = sub.add_parser("jobs", help="list the jobs recorded in the result store")
    jobs.add_argument("--json", action="store_true", help="machine-readable output")
    _add_store_argument(jobs)
    _add_server_arguments(jobs)

    result = sub.add_parser(
        "result", help="print the stored result envelope of a finished job"
    )
    result.add_argument("job_id", help="job id as printed by `repro submit` / `repro jobs`")
    _add_store_argument(result)
    _add_server_arguments(result)

    serve = sub.add_parser(
        "serve", help="host the multi-tenant HTTP scheduling gateway"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8123, help="bind port (default: 8123; 0 = any free port)")
    serve.add_argument(
        "--store", metavar="DIR", default=DEFAULT_STORE,
        help=f"root of the per-tenant result stores (default: {DEFAULT_STORE})",
    )
    serve.add_argument(
        "--keys", metavar="FILE", default=None,
        help="JSON file mapping API keys to tenants; omit to disable auth (dev mode)",
    )
    serve.add_argument(
        "--max-workers", type=_positive_int, default=2,
        help="concurrent jobs across all tenants (default: 2)",
    )
    serve.add_argument(
        "--rate", type=float, default=None, metavar="N",
        help="per-tenant admission rate in requests/second (default: unlimited)",
    )
    serve.add_argument(
        "--burst", type=float, default=None, metavar="N",
        help="per-tenant burst capacity in requests (default: 2x --rate)",
    )
    serve.add_argument(
        "--interactive-weight", type=_positive_int, default=4, metavar="W",
        help="interactive dequeues per batch dequeue under load (default: 4)",
    )
    serve.add_argument(
        "--backend", default="local", choices=("local", "fabric"),
        help="job execution backend: 'local' runs jobs on an in-process pool, "
        "'fabric' enqueues them into a persistent work queue drained by "
        "external `repro worker` processes",
    )
    serve.add_argument(
        "--fabric-root", metavar="DIR", default=None,
        help="fabric directory shared with the workers "
        "(default: <store>/fabric when --backend fabric)",
    )

    worker = sub.add_parser(
        "worker", help="run one fabric worker process draining a shared work queue"
    )
    worker.add_argument(
        "fabric_root", help="fabric directory shared with `repro serve --backend fabric`"
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="name recorded in leases and the journal (default: <host>-<pid>)",
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="claim lease TTL; an unrenewed lease is reclaimed after this "
        "(default: 30)",
    )
    worker.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help="lease renewal period (default: lease TTL / 3)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="SECONDS",
        help="idle sleep between empty claim scans (default: 0.2)",
    )
    worker.add_argument(
        "--max-tasks", type=_positive_int, default=None, metavar="N",
        help="exit after executing N tasks (default: run until SIGTERM)",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-task progress lines"
    )

    store = sub.add_parser(
        "store", help="inspect and maintain a result store from the shell"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="entries, bytes, shard histogram and warm-tier counters"
    )
    store_stats.add_argument("--json", action="store_true", help="machine-readable output")
    _add_store_argument(store_stats)
    store_gc = store_sub.add_parser(
        "gc", help="run eviction and compaction on the results tier"
    )
    store_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="evict least-recently-used envelopes until the tier fits N bytes",
    )
    store_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted/compacted without touching disk",
    )
    store_gc.add_argument("--json", action="store_true", help="machine-readable output")
    _add_store_argument(store_gc)

    registry = sub.add_parser("registry", help="list the plugin registries of the public API")
    registry.add_argument(
        "axis", nargs="?", choices=sorted(ALL_REGISTRIES),
        help="only this axis (default: every axis)",
    )
    registry.add_argument(
        "--json", action="store_true",
        help="sorted, stable JSON listing (axis -> name -> description)",
    )

    bench = sub.add_parser(
        "bench", help="benchmark mapping-evaluation throughput on a workload preset"
    )
    from repro.benchmarking import ALL_PRESETS

    bench.add_argument(
        "preset", nargs="?", default="quick", choices=sorted(ALL_PRESETS),
        help="workload preset to benchmark (default: quick; "
        "'fusion' times fused-group evaluation instead of per-layer mapping evaluation)",
    )
    bench.add_argument("--arch", default="baseline-4x4", choices=sorted(architectures.available()))
    bench.add_argument("--samples", type=_positive_int, default=256, help="candidates per layer")
    bench.add_argument("--moves", type=_positive_int, default=96, help="delta moves timed per layer")
    bench.add_argument("--seed", type=int, default=0, help="sampling seed")
    bench.add_argument("--out", metavar="FILE", default=None, help="also write the JSON report here")
    bench.add_argument("--json", action="store_true", help="print the JSON report instead of the table")

    sub.add_parser("networks", help="list the evaluated DNN workloads and their layers")
    sub.add_parser("archs", help="list the available architecture presets")
    return parser


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=1, help="parallel layer solves")
    parser.add_argument(
        "--cache", metavar="FILE", default=None,
        help="mapping-cache file, loaded before and saved after the run",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--batch-size", type=_positive_int, default=64, metavar="N",
        help="vectorized evaluation batch size for the search baselines "
        "(1 = scalar reference path; outcomes are identical either way)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="per-layer wall-clock budget for the search baselines",
    )
    parser.add_argument(
        "--kernel-backend", default=None, choices=("numpy", "numba", "off"),
        help="evaluation-kernel backend for the search baselines "
        "(default: compiled numpy kernels; all backends are bit-identical)",
    )


def _add_fusion_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fusion", metavar="NAME", default=None,
        help="schedule a registered fusion group/plan as one unit "
        "(see `repro registry fusion_groups`; 'auto' greedily groups the layers)",
    )
    parser.add_argument(
        "--fusion-option", dest="fusion_options", action="append", default=[],
        metavar="KEY=VALUE",
        help="fusion-group factory option, repeatable (e.g. --fusion-option seq=64)",
    )


def _parse_fusion_options(pairs) -> dict:
    """``KEY=VALUE`` pairs to a factory-kwargs dict (values parsed as JSON)."""
    options = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"fusion option must be KEY=VALUE, got {pair!r}")
        try:
            options[key] = json.loads(value)
        except json.JSONDecodeError:
            options[key] = value  # bare strings pass through unquoted
    return options


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", metavar="DIR", default=DEFAULT_STORE,
        help=f"result-store directory (default: {DEFAULT_STORE})",
    )


def _add_server_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server", metavar="URL", default=None,
        help="route through a `repro serve` gateway instead of the local store",
    )
    parser.add_argument(
        "--tenant", default="default",
        help="tenant namespace on the gateway (default: default)",
    )
    parser.add_argument(
        "--api-key", default=None,
        help="API key for the gateway (required when the server enforces auth)",
    )


def _gateway_client(args):
    from repro.api.client import GatewayClient

    return GatewayClient(args.server, tenant=args.tenant, api_key=args.api_key)


def _engine_spec(args) -> EngineSpec:
    return EngineSpec(
        jobs=args.jobs,
        cache=args.cache,
        batch_size=args.batch_size,
        time_budget=args.time_budget,
        kernel_backend=args.kernel_backend,
    )


# ------------------------------------------------------------- text rendering


def _solve_description(outcome) -> str:
    """One-line solve summary matched to the scheduler kind."""
    if outcome.from_cache:
        return f"{outcome.scheduler}: served from mapping cache"
    detail = outcome.detail
    if outcome.scheduler == "cosa":
        return f"CoSA solve: {detail.solution.status.value} in {outcome.solve_time_seconds:.1f}s"
    if outcome.scheduler == "cosa-gpu":
        return (
            f"CoSA-GPU solve: {detail.result.solution.status.value} in "
            f"{outcome.solve_time_seconds:.1f}s "
            f"({detail.threads_per_block} threads/block, {detail.blocks} blocks)"
        )
    if outcome.scheduler == "random":
        return f"Random search: {outcome.num_sampled} samples, {outcome.num_evaluated} valid"
    if outcome.scheduler == "timeloop-hybrid":
        return f"Hybrid search: {outcome.num_evaluated} valid mappings evaluated"
    if outcome.scheduler == "tvm-like":
        return f"TVM-like tuner: {outcome.num_sampled} samples, {outcome.num_evaluated} valid"
    if outcome.scheduler == "local-search":
        return f"Local search: {outcome.num_evaluated} move evaluations"
    return f"{outcome.scheduler}: solved in {outcome.solve_time_seconds:.1f}s"


def _render_schedule(result, as_json: bool, save: str | None = None) -> int:
    network = result.artifacts["network"]
    accelerator = result.artifacts["accelerator"]

    if save and result.data["succeeded"]:
        from repro.mapping.serialize import save_mapping

        path = save_mapping(network.outcomes[0].mapping, save)
        result.data["saved_to"] = str(path)

    if as_json:
        print(result.to_json())
        return 0 if result.data["succeeded"] else 1

    if not result.data["succeeded"]:
        failed = next(o for o in network.outcomes if not o.succeeded)
        print(
            f"{_solve_description(failed)}\n"
            f"no valid schedule found for {failed.layer.name or failed.layer.canonical_name}",
            file=sys.stderr,
        )
        return 1

    from repro.model import CostModel

    cost_model = CostModel(accelerator)
    lines = []
    for outcome, entry in zip(network.outcomes, result.data["outcomes"]):
        cost = cost_model.evaluate(outcome.mapping)
        lines.append(_solve_description(outcome))
        lines.append("")
        lines.append(entry["loop_nest"])
        lines.append("")
        lines.append(
            f"analytical latency: {cost.latency / 1e6:.3f} MCycles "
            f"(bound by {cost.latency_breakdown.bound_by})"
        )
        lines.append(f"analytical energy : {cost.energy / 1e6:.3f} uJ")
        if result.spec.platform.name == "noc":
            from repro.noc import NoCSimulator

            noc_result = NoCSimulator(accelerator).simulate(outcome.mapping)
            lines.append(
                f"NoC-simulated latency: {noc_result.latency / 1e6:.3f} MCycles "
                f"(bound by {noc_result.bound_by})"
            )
    if "fusion" in result.data:
        fusion = result.data["fusion"]
        lines.append("")
        lines.append(
            f"fusion: {fusion['plan']['num_fused_groups']} fused group(s), "
            f"{fusion['plan']['num_fused_edges']} pinned edge(s); "
            f"saved {fusion['saved_dram_words']} DRAM words, "
            f"{fusion['saved_energy_pj'] / 1e6:.3f} uJ"
        )
    if "saved_to" in result.data:
        lines.append(f"mapping written to {result.data['saved_to']}")
    print("\n".join(lines))
    return 0


def _render_compare(result, as_json: bool) -> int:
    if as_json:
        print(result.to_json())
        return 0

    summary = result.artifacts["summary"]
    platform, metric = result.spec.platform.name, result.spec.platform.metric
    lines = [f"[{summary.label}] {platform}/{metric} speedups over Random"]
    for c in summary.comparisons:
        lines.append(
            f"  {c.layer:<20} hybrid {c.hybrid_speedup:6.2f}x   cosa {c.cosa_speedup:6.2f}x"
            f"   (times: {c.random_time:.2f}s / {c.hybrid_time:.2f}s / {c.cosa_time:.2f}s)"
        )
    lines.append(
        f"  geomean              hybrid {summary.hybrid_geomean:6.2f}x   "
        f"cosa {summary.cosa_geomean:6.2f}x"
    )
    for name, stats in summary.engine_stats.items():
        lines.append(
            f"  [{name}] solves={stats.solves} cache_hits={stats.cache_hits} "
            f"cache_misses={stats.cache_misses} dedup_reuses={stats.dedup_reuses}"
        )
    print("\n".join(lines))
    return 0


def _render_suite(result, as_json: bool) -> int:
    if as_json:
        print(result.to_json())
        return 0 if result.data["succeeded"] else 1

    suite = result.artifacts["suite"]
    scheduler = result.artifacts["scheduler"]
    lines = [
        f"{scheduler.name} on {len(suite.networks)} networks ({result.spec.arch.preset})"
    ]
    for name, network in suite.networks.items():
        stats = network.stats
        lines.append(
            f"  {name:<12} {network.num_succeeded}/{len(network.outcomes)} scheduled"
            f"  solves={stats.solves} cache_hits={stats.cache_hits}"
            f" dedup_reuses={stats.dedup_reuses} wall={stats.wall_time_seconds:.1f}s"
        )
    total = suite.stats
    lines.append(
        f"  total        layers={total.num_layers} solves={total.solves}"
        f" cache_hits={total.cache_hits} cache_misses={total.cache_misses}"
        f" wall={total.wall_time_seconds:.1f}s"
    )
    print("\n".join(lines))
    failed = sum(len(n.outcomes) - n.num_succeeded for n in suite.networks.values())
    if failed:
        print(f"{failed} layers produced no valid schedule", file=sys.stderr)
        return 1
    return 0


def _render_result(result, as_json: bool, save: str | None = None) -> int:
    if result.kind == "schedule":
        return _render_schedule(result, as_json, save=save)
    if result.kind == "compare":
        return _render_compare(result, as_json)
    return _render_suite(result, as_json)


def _execute(spec: RunSpec, as_json: bool, save: str | None = None) -> int:
    """Run a spec and render it, turning spec/registry errors into exit 1."""
    try:
        result = api.run(spec)
    except (ValueError, api.UnknownNameError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return _render_result(result, as_json, save=save)


# ----------------------------------------------------------------- subcommands


def _schedule(args) -> int:
    if args.layer is None and args.fusion is None:
        print("error: provide a layer or --fusion NAME", file=sys.stderr)
        return 1
    try:
        spec = RunSpec(
            kind="schedule",
            arch=ArchSpec(args.arch),
            workload=WorkloadSpec(
                layers=(args.layer,) if args.layer is not None else (),
                batch=args.batch,
                fusion=args.fusion,
                fusion_options=_parse_fusion_options(args.fusion_options),
            ),
            scheduler=SchedulerSpec(args.scheduler),
            platform=PlatformSpec(args.platform),
            engine=_engine_spec(args),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return _execute(spec, args.json, save=args.save)


def _compare(args) -> int:
    spec = RunSpec(
        kind="compare",
        arch=ArchSpec(args.arch),
        workload=WorkloadSpec(network=args.network, first_layers=args.layers, batch=args.batch),
        platform=PlatformSpec(args.platform, args.metric),
        engine=_engine_spec(args),
        seed=args.seed,
    )
    return _execute(spec, args.json)


def _suite(args) -> int:
    spec = RunSpec(
        kind="suite",
        arch=ArchSpec(args.arch),
        workload=WorkloadSpec(first_layers=args.layers, batch=args.batch),
        scheduler=SchedulerSpec(args.scheduler),
        engine=_engine_spec(args),
    )
    return _execute(spec, args.json)


def _load_spec_or_fail(path) -> RunSpec | None:
    try:
        return api.load_spec(path)
    except FileNotFoundError:
        print(f"error: spec file {path} does not exist", file=sys.stderr)
        return None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def _run_spec_file(args) -> int:
    spec = _load_spec_or_fail(args.spec)
    if spec is None:
        return 1
    if args.fusion is not None or args.fusion_options:
        import dataclasses

        try:
            options = _parse_fusion_options(args.fusion_options)
            spec = dataclasses.replace(
                spec,
                workload=dataclasses.replace(
                    spec.workload,
                    fusion=args.fusion if args.fusion is not None else spec.workload.fusion,
                    fusion_options=options or spec.workload.fusion_options,
                ),
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.follow:
        return _follow(spec)
    return _execute(spec, args.json)


def _follow(spec: RunSpec) -> int:
    """Execute ``spec`` as a service job, streaming NDJSON events to stdout."""
    from repro.api.service import JobState, SchedulingService

    def emit(event) -> None:
        print(json.dumps(event.to_dict()), flush=True)

    service = SchedulingService(max_workers=1)
    try:
        # Spec-resolution errors surface through the job's FAILED state (and
        # its run_failed event), not from submit() itself.
        job = service.submit(spec, on_event=emit)
        job.wait()
    finally:
        service.shutdown(wait=False)  # daemon worker; stay Ctrl-C friendly
    if job.state is not JobState.DONE:
        print(f"error: {job.error}", file=sys.stderr)
        return 1
    return 0 if job.result().succeeded else 1


def _submit(args) -> int:
    from repro.api.service import JobState, SchedulingService

    spec = _load_spec_or_fail(args.spec)
    if spec is None:
        return 1
    if args.server:
        return _submit_remote(args, spec)
    service = SchedulingService(max_workers=1, store=args.store)
    try:
        job = service.submit(spec)
        job.wait()
    finally:
        service.shutdown(wait=False)  # daemon worker; stay Ctrl-C friendly
    record = job.to_dict()
    if args.json:
        print(json.dumps(record, indent=2))
    elif job.state is JobState.DONE:
        origin = "result store" if job.store_hit else "fresh run"
        print(f"{job.id}  {job.state.value}  ({origin})")
    if job.state is not JobState.DONE:
        print(f"error: {job.error}", file=sys.stderr)
        return 1
    return 0


def _submit_remote(args, spec) -> int:
    from repro.api.client import GatewayError

    client = _gateway_client(args)
    try:
        record = client.submit(spec, priority=args.priority)
        record = client.wait(record["job_id"])
    except (GatewayError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(record, indent=2))
    elif record["state"] == "done":
        origin = "result store" if record.get("store_hit") else "fresh run"
        print(f"{record['job_id']}  {record['state']}  ({origin})")
    if record["state"] != "done":
        error = record.get("error") or {}
        print(
            f"error: job {record['job_id']} {record['state']}"
            f" ({error.get('type')}: {error.get('message')})",
            file=sys.stderr,
        )
        return 1
    return 0


def _jobs(args) -> int:
    from repro.api.store import ResultStore

    if args.server:
        from repro.api.client import GatewayError

        try:
            records = _gateway_client(args).jobs()
        except (GatewayError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    else:
        records = ResultStore(args.store).load_jobs()
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    if not records:
        print(f"no jobs recorded in {args.server or args.store}")
        return 0
    for record in records:
        origin = "store-hit" if record.get("store_hit") else "computed"
        print(f"{record['job_id']}  {record['state']:<9}  {record['kind']:<8}  {origin}")
    return 0


def _result(args) -> int:
    from repro.api.store import ResultStore

    if args.server:
        from repro.api.client import GatewayError

        try:
            print(_gateway_client(args).result_text(args.job_id), end="")
        except (GatewayError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        return 0
    store = ResultStore(args.store)
    record = store.load_job(args.job_id)
    if record is None:
        print(f"error: no job {args.job_id!r} recorded in {args.store}", file=sys.stderr)
        return 1
    result = store.load(record["spec_fingerprint"])
    if result is None:
        error = record.get("error") or {}
        detail = f": {error.get('type')}: {error.get('message')}" if error else ""
        print(
            f"error: job {args.job_id} has no stored result "
            f"(state: {record['state']}){detail}",
            file=sys.stderr,
        )
        return 1
    print(result.to_json())
    return 0


def _install_signal_handlers(on_signal) -> bool:
    """Route SIGTERM/SIGINT to ``on_signal`` (main thread only; False if not)."""
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return False
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, on_signal)
    return True


def _serve(args) -> int:
    from repro.api.auth import ApiKeyAuth
    from repro.api.gateway import SchedulingGateway
    from repro.api.ratelimit import RateLimiter

    try:
        auth = ApiKeyAuth.from_file(args.keys) if args.keys else None
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    limiter = None
    if args.rate is not None:
        try:
            limiter = RateLimiter(
                rate=args.rate,
                burst=args.burst if args.burst is not None else 2 * args.rate,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    fabric_root = args.fabric_root
    if args.backend == "fabric" and fabric_root is None:
        fabric_root = str(Path(args.store) / "fabric")
    try:
        gateway = SchedulingGateway(
            args.store,
            auth=auth,
            rate_limiter=limiter,
            max_workers=args.max_workers,
            interactive_weight=args.interactive_weight,
            backend=args.backend,
            fabric_root=fabric_root,
            host=args.host,
            port=args.port,
        )
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    # Graceful stop on SIGTERM/SIGINT: stop accepting, close the listener,
    # flush records, exit 0 — a `kill` never strands RUNNING job records.
    # Installed before the banner so a supervisor reacting to it can
    # immediately signal us.
    def on_signal(signum, frame):
        raise KeyboardInterrupt

    _install_signal_handlers(on_signal)
    mode = "api-key auth" if auth else "no auth (dev mode)"
    backend = "local pool" if args.backend == "local" else f"fabric={fabric_root}"
    try:
        # The banner sits inside the try: a supervisor may react to it with
        # an immediate signal, which must land as a clean shutdown.
        print(
            f"repro gateway on {gateway.url}  store={args.store}  {backend}  {mode}",
            flush=True,
        )
        gateway.serve_forever()
    except KeyboardInterrupt:
        print("repro gateway: shutting down", flush=True)
    finally:
        gateway.close(wait=False)  # daemon workers; stay Ctrl-C friendly
    return 0


def _worker(args) -> int:
    from repro.fabric.worker import FabricWorker

    log = (lambda message: None) if args.quiet else (lambda message: print(message, flush=True))
    worker = FabricWorker(
        args.fabric_root,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        poll_interval=args.poll_interval,
        max_tasks=args.max_tasks,
        log=log,
    )

    # SIGTERM/SIGINT: stop claiming, let the in-flight lease finish (the
    # drain default), flush the event log, exit 0.  A second signal raises
    # and kills the process the hard way.
    def on_signal(signum, frame):
        if worker.stopping:
            raise KeyboardInterrupt
        log(f"worker {worker.worker_id}: draining (signal {signum})")
        worker.stop()

    _install_signal_handlers(on_signal)
    try:
        return worker.run()
    except KeyboardInterrupt:
        return 1


def _store(args) -> int:
    from repro.api.store import ResultStore

    store = ResultStore(args.store)
    if args.store_command == "stats":
        summary = store.stats_summary()
        if args.json:
            print(json.dumps(summary, indent=2))
            return 0
        print(f"store {summary['root']} (layout v{summary['layout_version']}, "
              f"shard depth {summary['shard_depth']})")
        print(f"  entries: {summary['entries']}  bytes: {summary['bytes']}"
              f"  jobs: {summary['jobs']}")
        if summary["shards"]:
            width = max(count for count in summary["shards"].values())
            for shard, count in summary["shards"].items():
                bar = "#" * max(1, round(20 * count / width))
                print(f"  {shard}  {count:>6}  {bar}")
        warm = summary["warm_tier"]
        counters = summary["counters"]
        print(f"  warm tier: {warm['entries']}/{warm['capacity']} entries, "
              f"{counters['warm_hits']} warm / {counters['disk_hits']} disk hits "
              f"({counters['fused_hits']} fused), {counters['misses']} misses")
        return 0
    # gc: eviction (when bounded) then compaction, one report.
    evicted = store.gc(max_bytes=args.max_bytes, dry_run=args.dry_run)
    compacted = store.compact(dry_run=args.dry_run)
    report = {
        "dry_run": args.dry_run,
        "eviction": evicted.to_dict(),
        "compaction": compacted.to_dict(),
    }
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    verb = "would evict" if args.dry_run else "evicted"
    print(f"{verb} {len(evicted.evicted)} envelope(s) ({evicted.evicted_bytes} bytes); "
          f"removed {compacted.removed_temp_files} temp file(s), "
          f"{compacted.removed_empty_shards} empty shard dir(s); "
          f"{compacted.remaining_entries} entries remain")
    return 0


def _registry(args) -> int:
    if args.json:
        listing = {
            axis: dict(sorted(registry.describe().items()))
            for axis, registry in sorted(ALL_REGISTRIES.items())
            if args.axis is None or axis == args.axis
        }
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    for axis, registry in ALL_REGISTRIES.items():
        if args.axis is not None and axis != args.axis:
            continue
        print(f"{axis}:")
        descriptions = registry.describe()
        for name in registry.available():
            print(f"  {name:<16} {descriptions[name]}")
    return 0


def _bench(args) -> int:
    from repro.benchmarking import (
        FUSION_PRESET,
        bench_report,
        check_fused_report,
        check_report,
        fused_bench_report,
        fusion_bench_groups,
        preset_layers,
        render_fused_row,
        render_fused_summary,
        render_row,
        render_summary,
    )
    from repro.io_utils import atomic_write_json

    fusion = args.preset == FUSION_PRESET
    try:
        if fusion:
            report = fused_bench_report(
                fusion_bench_groups(),
                args.samples,
                args.seed,
                arch=architectures.create(args.arch),
                label=args.preset,
                progress=None if args.json else (lambda row: print(render_fused_row(row))),
            )
        else:
            report = bench_report(
                preset_layers(args.preset),
                args.samples,
                args.seed,
                arch=architectures.create(args.arch),
                num_moves=args.moves,
                label=args.preset,
                progress=None if args.json else (lambda row: print(render_row(row))),
            )
    except RuntimeError as error:  # no numpy: nothing to measure
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.out:
        atomic_write_json(args.out, report)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        summary = render_fused_summary(report) if fusion else render_summary(report)
        print(f"\n{summary}")
        if args.out:
            print(f"report written to {args.out}")
    failures = check_fused_report(report) if fusion else check_report(report)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


def _networks() -> int:
    for name in workloads.available():
        layers = workloads.create(name)
        print(f"{name} ({len(layers)} layers)")
        for layer in layers:
            label = layer.name or layer.canonical_name
            if label != layer.canonical_name:
                label = f"{label} [{layer.canonical_name}]"
            print(f"  {label}")
    return 0


def _archs() -> int:
    for name in architectures.available():
        print(f"[{name}]")
        print(architectures.create(name).describe())
        print()
    return 0


def main(argv=None) -> int:
    """CLI entry point (returns the process exit code)."""
    args = _build_parser().parse_args(argv)
    if args.command == "schedule":
        return _schedule(args)
    if args.command == "compare":
        return _compare(args)
    if args.command == "suite":
        return _suite(args)
    if args.command == "run":
        return _run_spec_file(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "jobs":
        return _jobs(args)
    if args.command == "result":
        return _result(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "worker":
        return _worker(args)
    if args.command == "store":
        return _store(args)
    if args.command == "registry":
        return _registry(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "networks":
        return _networks()
    return _archs()


if __name__ == "__main__":
    raise SystemExit(main())
