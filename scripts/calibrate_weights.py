"""Calibration sweep for the CoSA objective weights.

Compares several (utilization, compute, traffic) weight combinations and
capacity fractions against the Random and Timeloop-Hybrid baselines on a
sample of layers, reporting the geometric-mean latency ratio.  The paper
tunes its weights with micro-benchmarks per architecture; this script plays
that role for the reproduction.

Run:  python scripts/calibrate_weights.py
"""

from __future__ import annotations

import math
import time

from repro.arch import simba_like
from repro.baselines import RandomScheduler, TimeloopHybridScheduler
from repro.core.objectives import ObjectiveWeights
from repro.core.scheduler import CoSAScheduler
from repro.model import CostModel
from repro.workloads import layer_from_name

SAMPLE_LAYERS = [
    "3_7_512_512_1",
    "1_14_256_1024_1",
    "3_27_128_128_1",
    "1_1_4096_1000_1",
    "11_55_3_64_4",
    "3_14_128_256_1",
    "1_56_64_64_1",
    "3_56_64_64_1",
]

WEIGHT_SETS = {
    "equal (1,1,1) f=0.5": (ObjectiveWeights(1.0, 1.0, 1.0), 0.5),
    "compute-heavy (0.2,4,1) f=0.5": (ObjectiveWeights(0.2, 4.0, 1.0), 0.5),
    "compute-heavy (0.2,4,1) f=0.8": (ObjectiveWeights(0.2, 4.0, 1.0), 0.8),
    "balanced (0.5,2,1) f=0.8": (ObjectiveWeights(0.5, 2.0, 1.0), 0.8),
    "traffic-heavy (0.2,2,2) f=0.8": (ObjectiveWeights(0.2, 2.0, 2.0), 0.8),
    "no-util (0,2,1) f=0.8": (ObjectiveWeights(0.0, 2.0, 1.0), 0.8),
}


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main() -> None:
    arch = simba_like()
    cost_model = CostModel(arch)
    layers = [layer_from_name(name) for name in SAMPLE_LAYERS]

    random_lat = {}
    hybrid_lat = {}
    rand = RandomScheduler(arch, seed=1)
    hybrid = TimeloopHybridScheduler(arch, num_threads=2, termination_condition=64,
                                     max_evaluations=800, seed=1)
    for layer in layers:
        random_lat[layer.name] = rand.schedule(layer).cost.latency
        hybrid_lat[layer.name] = hybrid.schedule(layer).cost.latency

    print("layer baselines (latency):")
    for layer in layers:
        print(f"  {layer.name:18s} random={random_lat[layer.name]:.3e} hybrid={hybrid_lat[layer.name]:.3e}")

    for label, (weights, fraction) in WEIGHT_SETS.items():
        scheduler = CoSAScheduler(arch, weights=weights, capacity_fraction=fraction)
        ratios_r, ratios_h, times, invalid = [], [], [], 0
        for layer in layers:
            start = time.perf_counter()
            result = scheduler.schedule(layer)
            times.append(time.perf_counter() - start)
            cost = cost_model.evaluate(result.mapping)
            if not cost.valid:
                invalid += 1
                continue
            ratios_r.append(random_lat[layer.name] / cost.latency)
            ratios_h.append(hybrid_lat[layer.name] / cost.latency)
        print(
            f"{label:32s} speedup-vs-random={geomean(ratios_r):5.2f} "
            f"speedup-vs-hybrid={geomean(ratios_h):5.2f} "
            f"avg-solve={sum(times)/len(times):5.1f}s invalid={invalid}"
        )


if __name__ == "__main__":
    main()
