"""TVM-like iterative tuner (baseline of the GPU experiment, Sec. V-D).

The paper compares CoSA-GPU against TVM's XGBoost tuner running 50
measurement trials per layer.  Hardware measurements are unavailable here
(documented substitution), so both sides are evaluated on the same
analytical cost model; this tuner reproduces the *search behaviour* of a
feedback-driven autotuner: it alternates exploration (random candidates)
with exploitation (mutations of the best schedules found so far), spending a
fixed number of "measurement" trials, each of which evaluates a small batch
of candidates.
"""

from __future__ import annotations

import random
import time

from repro.arch.accelerator import Accelerator
from repro.baselines.base import SearchResult, SearchScheduler, stable_layer_seed
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.mapping.space import MapSpace
from repro.model.cost import CostModel
from repro.workloads.layer import Layer


class TVMLikeTuner(SearchScheduler):
    """Feedback-driven autotuner in the style of AutoTVM.

    Parameters
    ----------
    accelerator:
        Target (typically the GPU-as-accelerator description).
    trials:
        Number of measurement trials (50 in the paper's TVM baseline).
    batch_size:
        Candidates evaluated per trial.  Each trial's batch is the natural
        unit of vectorized evaluation: with ``eval_batch_size`` set, the
        whole batch is scored in one :class:`~repro.model.batch.BatchCostModel`
        pass instead of one scalar evaluation per candidate.
    exploration:
        Fraction of each batch drawn at random instead of mutated from the
        incumbent population.
    metric:
        ``"latency"``, ``"energy"`` or ``"edp"``.
    seed:
        Base random seed.
    eval_batch_size / time_budget_seconds:
        See :class:`~repro.baselines.base.SearchScheduler`.  The wall-clock
        budget is checked once per trial in both the scalar and the batched
        path; the number of trials a budget buys still depends on machine
        and evaluation speed, so budget-capped outcomes are time-dependent.
    """

    name = "tvm-like"

    def __init__(
        self,
        accelerator: Accelerator,
        trials: int = 50,
        batch_size: int = 8,
        exploration: float = 0.3,
        metric: str = "latency",
        seed: int = 0,
        eval_batch_size: int | None = None,
        time_budget_seconds: float | None = None,
        kernel_backend: str | None = None,
    ):
        super().__init__(
            metric,
            eval_batch_size=eval_batch_size,
            time_budget_seconds=time_budget_seconds,
            kernel_backend=kernel_backend,
        )
        if trials < 1 or batch_size < 1:
            raise ValueError("trials and batch_size must be positive")
        if not 0.0 <= exploration <= 1.0:
            raise ValueError("exploration must be within [0, 1]")
        self.accelerator = accelerator
        self.trials = trials
        self.batch_size = batch_size
        self.exploration = exploration
        self.seed = seed
        self._cost_model = CostModel(accelerator)

    def _config(self) -> dict:
        return {
            **super()._config(),
            "trials": self.trials,
            "batch_size": self.batch_size,
            "exploration": self.exploration,
            "seed": self.seed,
        }

    def schedule(self, layer: Layer) -> SearchResult:
        """Tune ``layer`` for ``trials`` measurement rounds and return the best mapping."""
        start = time.perf_counter()
        deadline = self._deadline(start)
        rng = random.Random(stable_layer_seed(self.seed, layer.canonical_name))
        space = MapSpace(layer, self.accelerator)

        population: list[tuple[float, Mapping]] = []
        best_mapping = None
        best_score = float("inf")
        sampled = 0
        evaluated = 0

        for _ in range(self.trials):
            if self._out_of_time(deadline):
                break
            batch: list[Mapping] = []
            for _ in range(self.batch_size):
                if population and rng.random() > self.exploration:
                    _, parent = population[rng.randrange(min(len(population), 4))]
                    batch.append(self._mutate(parent, space, rng))
                else:
                    batch.append(space.random_mapping(rng))
            for candidate, ok, score in self._scored(batch):
                sampled += 1
                if not ok:
                    continue
                evaluated += 1
                score = float(score)
                population.append((score, candidate))
                if score < best_score:
                    best_mapping, best_score = candidate, score
            population.sort(key=lambda item: item[0])
            del population[16:]

        best_cost = self._cost_model.evaluate(best_mapping) if best_mapping is not None else None
        return SearchResult(
            mapping=best_mapping,
            cost=best_cost,
            num_sampled=sampled,
            num_evaluated=evaluated,
            elapsed_seconds=time.perf_counter() - start,
        )

    def schedule_network(self, layers) -> list[SearchResult]:
        """Tune every layer of a network independently."""
        return [self.schedule(layer) for layer in layers]

    # ---------------------------------------------------------------- mutation
    def _mutate(self, mapping: Mapping, space: MapSpace, rng: random.Random) -> Mapping:
        """Local perturbation: move one prime factor to a different level or
        shuffle one level's loop order."""
        if rng.random() < 0.5:
            return self._shuffle_level(mapping, rng)
        return self._move_factor(mapping, space, rng)

    @staticmethod
    def _shuffle_level(mapping: Mapping, rng: random.Random) -> Mapping:
        levels = [
            LevelMapping(temporal=list(l.temporal), spatial=list(l.spatial))
            for l in mapping.levels
        ]
        candidates = [i for i, l in enumerate(levels) if len(l.temporal) > 1]
        if candidates:
            index = rng.choice(candidates)
            rng.shuffle(levels[index].temporal)
        return Mapping(mapping.layer, levels)

    @staticmethod
    def _move_factor(mapping: Mapping, space: MapSpace, rng: random.Random) -> Mapping:
        levels = [
            LevelMapping(temporal=list(l.temporal), spatial=list(l.spatial))
            for l in mapping.levels
        ]
        sources = [
            (i, j)
            for i, level in enumerate(levels)
            for j, loop in enumerate(level.temporal)
            if loop.bound > 1
        ]
        if not sources:
            return Mapping(mapping.layer, levels)
        level_index, loop_index = rng.choice(sources)
        loop = levels[level_index].temporal.pop(loop_index)
        # Split off one prime factor of the loop and move it elsewhere.
        from repro.workloads.prime import factorize

        primes = factorize(loop.bound)
        moved = rng.choice(primes)
        remaining = loop.bound // moved
        if remaining > 1:
            levels[level_index].temporal.insert(loop_index, Loop(loop.dim, remaining))
        target = rng.randrange(len(levels))
        levels[target].temporal.append(Loop(loop.dim, moved))
        return Mapping(mapping.layer, levels)
