"""Fig. 4: impact of the spatial-mapping choice (NoC simulator platform)."""

from bench_utils import save_report

from repro.experiments.figures import fig4_spatial_sweep
from repro.experiments.reporting import format_table


def test_fig4_spatial_sweep(benchmark):
    points = benchmark.pedantic(fig4_spatial_sweep, rounds=1, iterations=1)

    save_report(
        "fig4_spatial",
        format_table(
            ["mapping", "latency [MCycles]"],
            [[p.label, p.latency_mcycles] for p in points],
            title="Fig. 4 - spatial mapping sweep (R=S=1, P=Q=16, C=256, K=1024)",
        ),
    )

    assert len(points) >= 10
    best = min(p.latency_mcycles for p in points)
    worst = max(p.latency_mcycles for p in points)
    # The paper reports a 4.3x gap between the best and worst spatial mapping.
    assert worst / best > 1.5
    # Using all 16 PEs should beat using only a handful.
    fully_spatial = [p for p in points if sum(p.spatial.values()) and
                     __import__("math").prod(p.spatial.values()) == 16]
    assert min(p.latency_mcycles for p in fully_spatial) <= best * 1.5
