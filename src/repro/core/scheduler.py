"""The public CoSA scheduler API.

:class:`CoSAScheduler` generates one schedule per layer in a single MIP
solve — no iterative search, no simulation feedback — exactly the
"one-shot" property the paper highlights.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.arch.accelerator import Accelerator
from repro.core.formulation import CoSAFormulation, FormulationStats
from repro.core.objectives import ObjectiveBreakdown, ObjectiveWeights
from repro.digest import canonical_json
from repro.engine.outcome import ScheduleOutcome
from repro.mapping.mapping import Mapping
from repro.solver.solution import Solution, SolveStatus
from repro.workloads.layer import Layer


@dataclass
class ScheduleResult:
    """Outcome of scheduling one layer with CoSA.

    Attributes
    ----------
    layer:
        The scheduled layer.
    mapping:
        The decoded schedule (``None`` only if the MIP was infeasible, which
        cannot happen for well-formed architectures — every factor can always
        be placed temporally at the outermost level).
    solution:
        Raw solver solution.
    objective:
        Values of the utilization / compute / traffic objective terms.
    solve_time_seconds:
        Wall-clock time spent building + solving the MIP (the paper's
        time-to-solution metric).
    stats:
        Size of the generated MIP, or ``None`` when no formulation could be
        built (every capacity fraction failed before producing one).
    """

    layer: Layer
    mapping: Mapping | None
    solution: Solution
    objective: ObjectiveBreakdown | None
    solve_time_seconds: float
    stats: FormulationStats | None

    @property
    def succeeded(self) -> bool:
        """True when a schedule was produced."""
        return self.mapping is not None


class CoSAScheduler:
    """Constrained-optimization scheduler for spatial DNN accelerators.

    Parameters
    ----------
    accelerator:
        Target architecture.
    weights:
        Objective weights (Eq. 12); the defaults work well for the baseline
        architecture and can be re-calibrated per architecture as the paper
        does with micro-benchmarks.
    backend:
        MIP backend; defaults to scipy's HiGHS MILP solver with a small
        optimality gap and a time limit — CoSA's schedule quality does not
        hinge on proving the last fraction of a percent of optimality, and
        the limit keeps the one-shot property ("seconds per layer") that the
        paper reports for Gurobi.
    capacity_fraction:
        Buffer-capacity derating used inside the MIP (see
        :class:`~repro.core.formulation.CoSAFormulation`).
    """

    #: Scheduler identifier (engine reports and mapping-cache keys).
    name = "cosa"

    #: Default per-layer solver budget (seconds).
    DEFAULT_TIME_LIMIT = 20.0
    #: Default relative MIP gap at which the solver may stop.
    DEFAULT_MIP_GAP = 0.02
    #: Default buffer-capacity derating inside the MIP.
    DEFAULT_CAPACITY_FRACTION = 0.8
    #: Successive deratings tried when the decoded mapping overflows a buffer
    #: under the cost model's exact (halo- and sharing-aware) accounting.
    FALLBACK_FRACTIONS = (0.5, 0.3)

    def __init__(
        self,
        accelerator: Accelerator,
        weights: ObjectiveWeights | None = None,
        backend=None,
        capacity_fraction: float | None = None,
    ):
        self.accelerator = accelerator
        self.weights = weights or ObjectiveWeights()
        if backend is None:
            from repro.solver.scipy_backend import ScipyMilpBackend

            backend = ScipyMilpBackend(
                time_limit_seconds=self.DEFAULT_TIME_LIMIT, mip_rel_gap=self.DEFAULT_MIP_GAP
            )
        self.backend = backend
        self.capacity_fraction = (
            self.DEFAULT_CAPACITY_FRACTION if capacity_fraction is None else capacity_fraction
        )

    def schedule(self, layer: Layer) -> ScheduleResult:
        """Produce a schedule for ``layer``.

        Normally this is a single MIP solve.  Because the MIP's log-space
        capacity model slightly under-approximates input halos and
        shared-buffer packing, the decoded mapping is re-validated against
        the exact cost model; in the rare case it overflows a buffer, the MIP
        is re-solved with a tighter capacity derating (still no iterative
        *search* — at most a couple of additional one-shot solves).
        """
        from repro.model.cost import CostModel

        start = time.perf_counter()
        cost_model = CostModel(self.accelerator)
        fractions = (self.capacity_fraction,) + tuple(
            f for f in self.FALLBACK_FRACTIONS if f < self.capacity_fraction
        )

        formulation = None
        solution = None
        mapping = None
        objective = None
        for fraction in fractions:
            formulation = CoSAFormulation(
                layer,
                self.accelerator,
                weights=self.weights,
                capacity_fraction=fraction,
            )
            solution = formulation.solve(self.backend)
            if solution.status not in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT):
                continue
            if not solution.values:
                continue
            candidate = formulation.decode(solution)
            objective = formulation.objective_breakdown(solution)
            mapping = candidate
            if cost_model.evaluate(candidate).valid:
                break
        elapsed = time.perf_counter() - start
        return ScheduleResult(
            layer=layer,
            mapping=mapping,
            solution=solution,
            objective=objective,
            solve_time_seconds=elapsed,
            stats=formulation.stats if formulation is not None else None,
        )

    def schedule_network(self, layers, jobs: int = 1) -> list[ScheduleResult]:
        """Schedule every layer of a network (one independent solve per layer).

        ``jobs > 1`` delegates to the :class:`~repro.engine.engine.SchedulingEngine`
        for parallel solves with identical-layer de-duplication; results keep
        the input order and match the serial path (up to solver incumbents
        when a solve terminates on its wall-clock limit — see the engine's
        determinism notes).
        """
        if jobs == 1:
            return [self.schedule(layer) for layer in layers]
        from repro.engine import SchedulingEngine

        network = SchedulingEngine(self, evaluate_metrics=False).schedule_network(
            layers, jobs=jobs
        )
        return [outcome.detail for outcome in network.outcomes]

    # -------------------------------------------------------- engine protocol
    def config_fingerprint(self) -> str:
        """Deterministic configuration description (mapping-cache key part).

        The backend enters with its class name and every scalar attribute it
        carries (time limits, gaps, node budgets, ...), so two schedulers
        with differently-budgeted backends never share a cache key.
        """
        backend_config = {
            name: value
            for name, value in sorted(vars(self.backend).items())
            if isinstance(value, (bool, int, float, str, type(None)))
        }
        config = {
            "weights": {
                "utilization": self.weights.utilization,
                "compute": self.weights.compute,
                "traffic": self.weights.traffic,
            },
            "capacity_fraction": self.capacity_fraction,
            "fallback_fractions": list(self.FALLBACK_FRACTIONS),
            "backend": type(self.backend).__name__,
            "backend_config": backend_config,
        }
        return canonical_json(config)

    def schedule_outcome(self, layer: Layer) -> ScheduleOutcome:
        """Run :meth:`schedule` and report the unified engine outcome."""
        result = self.schedule(layer)
        return ScheduleOutcome(
            layer=layer,
            scheduler=self.name,
            mapping=result.mapping,
            wall_time_seconds=result.solve_time_seconds,
            solve_time_seconds=result.solve_time_seconds,
            num_sampled=1,
            num_evaluated=1,
            detail=result,
        )
