"""Workload representation used throughout the CoSA reproduction.

The paper targets operators expressible as a nested loop over named
dimensions with per-tensor projections — the tensor-problem IR of
:mod:`repro.workloads.problem`.  The historic 7-D convolution nest
(``R, S, P, Q, C, K, N``) is its :data:`~repro.workloads.problem.CONV7`
instance; matmul, depthwise/grouped convolution and attention are first-class
problems of their own.

This subpackage provides:

* :mod:`~repro.workloads.problem` — the :class:`~repro.workloads.problem.TensorProblem`
  IR (named dimensions, projection tables, sliding-window couplings,
  reduction markers), the generic :class:`~repro.workloads.problem.ProblemLayer`
  operator and constructors for matmul / depthwise / grouped conv / attention.
* :class:`~repro.workloads.layer.Layer` — the conv layer specification plus
  derived quantities (input width/height, MAC counts, tensor volumes).
* :mod:`~repro.workloads.prime` — prime factorisation helpers used by the
  prime-factor-allocation formulation of CoSA.
* :mod:`~repro.workloads.networks` — the exact layer tables used in the
  paper's evaluation (AlexNet, ResNet-50, ResNeXt-50 32x4d, DeepBench) plus
  transformer-block presets built from matmul/attention problems.
"""

from repro.workloads.layer import Layer, TensorKind, matmul_layer
from repro.workloads.problem import (
    CONV7,
    ProblemLayer,
    TensorProblem,
    Window,
    attention_av,
    attention_qk,
    available_problems,
    depthwise_conv,
    get_problem,
    grouped_conv,
    matmul,
    register_problem,
)
from repro.workloads.prime import (
    factorize,
    prime_factor_multiset,
    all_factorizations,
    divisors,
)
from repro.workloads.networks import (
    alexnet_layers,
    resnet50_layers,
    resnext50_layers,
    deepbench_layers,
    bert_base_block_layers,
    gpt2_small_block_layers,
    workload_suite,
    layer_from_name,
)

__all__ = [
    "Layer",
    "TensorKind",
    "TensorProblem",
    "ProblemLayer",
    "Window",
    "CONV7",
    "matmul",
    "matmul_layer",
    "depthwise_conv",
    "grouped_conv",
    "attention_qk",
    "attention_av",
    "register_problem",
    "get_problem",
    "available_problems",
    "factorize",
    "prime_factor_multiset",
    "all_factorizations",
    "divisors",
    "alexnet_layers",
    "resnet50_layers",
    "resnext50_layers",
    "deepbench_layers",
    "bert_base_block_layers",
    "gpt2_small_block_layers",
    "workload_suite",
    "layer_from_name",
]
