"""Mutable mapping state and local-search moves.

Local search walks the map space one *move* at a time instead of redrawing
whole mappings.  This module provides the pieces:

* :class:`MappingState` — a mutable factor placement (per-level temporal and
  spatial ``[dim, bound]`` lists, permutation order significant) that moves
  edit in place and that materializes to the same
  :class:`~repro.mapping.mapping.Mapping` a :class:`~repro.mapping.space.MappingDraws`
  would produce.
* :class:`FactorMove` — relocate one prime factor of a dimension between
  (level, temporal/spatial) slots.  A move with ``src_level == dst_level``
  and flipped spatial flags is a *spatial flip*.
* :class:`PermutationSwap` — exchange two temporal loops of one level.

Moves conserve the per-dimension factor product by construction, so a state
seeded from a consistent draw stays consistent forever; only fanout and
buffer-capacity validity can change, which is exactly what the DDFW-style
constraint weights of the local-search scheduler track.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.workloads.prime import factorize

__all__ = [
    "FactorMove",
    "PermutationSwap",
    "MappingState",
    "propose_move",
]


@dataclass(frozen=True)
class FactorMove:
    """Move ``factor`` of dimension ``dim`` between two placement slots.

    The factor is divided out of the entry at ``(src_level, src_spatial)``
    (removing the entry when its bound reaches 1) and multiplied into the
    ``dim`` entry at ``(dst_level, dst_spatial)``, creating it at position
    ``dst_pos`` (``-1`` appends) when absent.  ``factor`` must divide the
    source entry's bound, which :func:`propose_move` guarantees by drawing
    it from the bound's prime factorization.
    """

    dim: str
    factor: int
    src_level: int
    src_spatial: bool
    dst_level: int
    dst_spatial: bool
    dst_pos: int = -1

    @property
    def is_spatial_flip(self) -> bool:
        """True when the move toggles temporal/spatial without changing level."""
        return self.src_level == self.dst_level and self.src_spatial != self.dst_spatial

    @property
    def touches_temporal(self) -> bool:
        return not (self.src_spatial and self.dst_spatial)

    @property
    def touches_spatial(self) -> bool:
        return self.src_spatial or self.dst_spatial


@dataclass(frozen=True)
class PermutationSwap:
    """Exchange the temporal loops at positions ``i`` and ``j`` of ``level``."""

    level: int
    i: int
    j: int


@dataclass
class MappingState:
    """A mutable factor placement edited by moves.

    ``temporal[level]`` / ``spatial[level]`` are lists of mutable
    ``[dim, bound]`` pairs, innermost loop first, at most one entry per
    dimension per list and every bound > 1 — the same invariants
    :func:`~repro.mapping.space._merge_drawn` establishes on sampled draws.
    """

    layer: object
    num_levels: int
    temporal: list = field(default_factory=list)
    spatial: list = field(default_factory=list)

    # ------------------------------------------------------------ construction
    @classmethod
    def from_draws(cls, draws, index: int) -> "MappingState":
        """Seed a state from draw ``index`` of a sampled batch."""
        return cls(
            layer=draws.layer,
            num_levels=draws.num_levels,
            temporal=[[[d, b] for d, b in level] for level in draws.temporal[index]],
            spatial=[[[d, b] for d, b in level] for level in draws.spatial[index]],
        )

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "MappingState":
        """Seed a state from an existing mapping (bound-1 loops dropped)."""
        return cls(
            layer=mapping.layer,
            num_levels=mapping.num_levels,
            temporal=[
                [[loop.dim, loop.bound] for loop in level.temporal if loop.bound > 1]
                for level in mapping.levels
            ],
            spatial=[
                [[loop.dim, loop.bound] for loop in level.spatial if loop.bound > 1]
                for level in mapping.levels
            ],
        )

    def clone(self) -> "MappingState":
        """Deep copy (used to keep the best-so-far state of a search)."""
        return MappingState(
            layer=self.layer,
            num_levels=self.num_levels,
            temporal=[[[d, b] for d, b in level] for level in self.temporal],
            spatial=[[[d, b] for d, b in level] for level in self.spatial],
        )

    # ---------------------------------------------------------------- queries
    def spatial_product_at(self, level: int) -> int:
        product = 1
        for _, bound in self.spatial[level]:
            product *= bound
        return product

    def to_mapping(self) -> Mapping:
        """Materialize the full :class:`Mapping` (winners only, like draws)."""
        levels = []
        for level in range(self.num_levels):
            levels.append(
                LevelMapping(
                    temporal=[
                        Loop(dim=dim, bound=bound, spatial=False)
                        for dim, bound in self.temporal[level]
                    ],
                    spatial=[
                        Loop(dim=dim, bound=bound, spatial=True)
                        for dim, bound in self.spatial[level]
                    ],
                )
            )
        return Mapping(self.layer, levels)

    # ------------------------------------------------------------------ moves
    def _list(self, level: int, spatial: bool) -> list:
        return (self.spatial if spatial else self.temporal)[level]

    def apply(self, move) -> tuple:
        """Apply ``move`` in place; returns an undo record for :meth:`undo`.

        The record snapshots the (at most two) edited lists, so undo restores
        the exact permutation positions.
        """
        if isinstance(move, PermutationSwap):
            loops = self.temporal[move.level]
            record = ((loops, [list(e) for e in loops]),)
            loops[move.i], loops[move.j] = loops[move.j], loops[move.i]
            return record

        src = self._list(move.src_level, move.src_spatial)
        dst = self._list(move.dst_level, move.dst_spatial)
        record = ((src, [list(e) for e in src]),)
        if dst is not src:
            record = record + ((dst, [list(e) for e in dst]),)

        for index, entry in enumerate(src):
            if entry[0] == move.dim:
                if entry[1] % move.factor != 0:
                    raise ValueError(
                        f"factor {move.factor} does not divide the {move.dim} "
                        f"bound {entry[1]} at level {move.src_level}"
                    )
                entry[1] //= move.factor
                if entry[1] == 1:
                    del src[index]
                break
        else:
            raise ValueError(
                f"no {move.dim} entry at level {move.src_level} "
                f"({'spatial' if move.src_spatial else 'temporal'})"
            )

        for entry in dst:
            if entry[0] == move.dim:
                entry[1] *= move.factor
                break
        else:
            pos = move.dst_pos
            if pos < 0 or pos > len(dst):
                pos = len(dst)
            dst.insert(pos, [move.dim, move.factor])
        return record

    def undo(self, record: tuple) -> None:
        """Restore the lists snapshotted by :meth:`apply`."""
        for target, snapshot in record:
            target[:] = snapshot


def propose_move(
    state: MappingState,
    fanouts: dict[int, int],
    rng: random.Random,
    swap_probability: float = 0.25,
    overflow_probability: float = 0.1,
    max_attempts: int = 16,
):
    """Draw one random move for ``state``, or ``None`` when the state is frozen.

    With probability ``swap_probability`` (when some level has two or more
    temporal loops) a :class:`PermutationSwap` is proposed; otherwise a
    :class:`FactorMove` relocating one prime factor of a random movable
    entry to a random other slot.  Spatial destinations normally respect the
    remaining fanout budget, but with ``overflow_probability`` an
    over-subscribing move is allowed through so the search can cross
    infeasible regions — the DDFW weights on the spatial constraint group
    then steer it back out.
    """
    swappable = [
        level for level in range(state.num_levels) if len(state.temporal[level]) >= 2
    ]
    if swappable and rng.random() < swap_probability:
        level = swappable[rng.randrange(len(swappable))]
        loops = state.temporal[level]
        i = rng.randrange(len(loops))
        j = rng.randrange(len(loops) - 1)
        if j >= i:
            j += 1
        return PermutationSwap(level=level, i=i, j=j)

    sources = []
    for level in range(state.num_levels):
        for entry in state.temporal[level]:
            sources.append((level, False, entry))
        for entry in state.spatial[level]:
            sources.append((level, True, entry))
    if not sources:
        return None

    for _ in range(max_attempts):
        level, spatial, entry = sources[rng.randrange(len(sources))]
        dim, bound = entry
        primes = factorize(bound)
        factor = primes[rng.randrange(len(primes))]

        slots = [(lvl, False) for lvl in range(state.num_levels)]
        slots += [(lvl, True) for lvl in fanouts]
        slots = [slot for slot in slots if slot != (level, spatial)]
        dst_level, dst_spatial = slots[rng.randrange(len(slots))]
        if dst_spatial:
            budget = fanouts.get(dst_level, 1) // state.spatial_product_at(dst_level)
            if budget < factor and rng.random() >= overflow_probability:
                continue
        dst_pos = rng.randrange(len(state._list(dst_level, dst_spatial)) + 1)
        return FactorMove(
            dim=dim,
            factor=factor,
            src_level=level,
            src_spatial=spatial,
            dst_level=dst_level,
            dst_spatial=dst_spatial,
            dst_pos=dst_pos,
        )
    return None
