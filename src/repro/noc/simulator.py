"""The NoC simulation loop.

:class:`NoCSimulator` evaluates a mapping by walking its outer-loop rounds
(:class:`~repro.noc.traffic.TrafficGenerator`), delivering every round's
packets over the contended mesh (:class:`~repro.noc.mesh.MeshNetwork`),
staging the round's data through the DRAM model, and overlapping compute
with communication under double buffering: the data for round ``r+1`` is
fetched while round ``r`` computes, so each round contributes
``max(compute, NoC time, DRAM time)`` to the makespan.

For very long-running layers the simulator runs a bounded number of rounds
explicitly and extrapolates the steady-state round latency, which keeps
simulation time practical without losing the congestion behaviour (rounds
are periodic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.accelerator import Accelerator
from repro.mapping.mapping import Mapping
from repro.noc.dram import DramModel
from repro.noc.mesh import MeshNetwork
from repro.noc.traffic import TrafficGenerator
from repro.workloads.layer import TensorKind


@dataclass
class NoCResult:
    """Outcome of simulating one mapping.

    Attributes
    ----------
    latency:
        Total makespan in cycles.
    compute_cycles:
        Per-round PE compute cycles summed over all rounds.
    noc_cycles:
        Cycles in which progress was limited by the NoC.
    dram_cycles:
        Cycles in which progress was limited by DRAM bandwidth/latency.
    rounds_total / rounds_simulated:
        How many outer-loop rounds the mapping has and how many were
        simulated explicitly before extrapolating.
    noc_bytes / dram_bytes:
        Total payload bytes carried by the NoC and staged through DRAM.
    max_link_utilization:
        Busy fraction of the hottest mesh link (1.0 = fully serialised).
    """

    latency: float
    compute_cycles: float = 0.0
    noc_cycles: float = 0.0
    dram_cycles: float = 0.0
    rounds_total: int = 0
    rounds_simulated: int = 0
    noc_bytes: float = 0.0
    dram_bytes: float = 0.0
    max_link_utilization: float = 0.0
    bound_by: str = "compute"


class NoCSimulator:
    """Transaction-level evaluation platform (the paper's second platform).

    Parameters
    ----------
    accelerator:
        Target architecture.
    max_simulated_rounds:
        Number of outer-loop rounds to simulate explicitly before switching
        to steady-state extrapolation.
    """

    def __init__(self, accelerator: Accelerator, max_simulated_rounds: int = 64):
        self.accelerator = accelerator
        self.max_simulated_rounds = max_simulated_rounds

    def simulate(self, mapping: Mapping) -> NoCResult:
        """Simulate ``mapping`` and return the latency breakdown."""
        generator = TrafficGenerator(mapping, self.accelerator)
        mesh = MeshNetwork(self.accelerator.pe_array, self.accelerator.noc)
        dram = DramModel.from_noc(self.accelerator.noc)
        mesh.reset()
        dram.reset()

        total_rounds = generator.total_rounds
        simulated = 0
        elapsed = 0.0
        compute_total = 0.0
        noc_limited = 0.0
        dram_limited = 0.0
        noc_bytes = 0.0

        for round_obj in generator.rounds(max_rounds=self.max_simulated_rounds):
            round_start = elapsed
            noc_finish = round_start
            for packet in round_obj.packets:
                noc_finish = max(noc_finish, mesh.deliver(packet, round_start))
                noc_bytes += packet.payload_bytes * (
                    1 if packet.direction.name == "COLLECT" else 1
                )
            dram_finish = dram.transfer(round_obj.dram_bytes, round_start)

            transfer_time = max(noc_finish, dram_finish) - round_start
            round_latency = max(round_obj.compute_cycles, transfer_time)
            if round_latency <= 0:
                round_latency = round_obj.compute_cycles
            elapsed += round_latency

            compute_total += round_obj.compute_cycles
            if transfer_time > round_obj.compute_cycles:
                if (dram_finish - round_start) >= (noc_finish - round_start):
                    dram_limited += round_latency
                else:
                    noc_limited += round_latency
            simulated += 1

        if simulated == 0:
            return NoCResult(latency=0.0, rounds_total=total_rounds)

        if total_rounds > simulated:
            scale = total_rounds / simulated
            elapsed *= scale
            compute_total *= scale
            noc_limited *= scale
            dram_limited *= scale
            noc_bytes *= scale
            dram.total_bytes *= scale

        max_link_busy = mesh.max_link_busy_cycles()
        simulated_span = elapsed * (simulated / total_rounds) if total_rounds else elapsed
        max_link_utilization = (
            min(1.0, max_link_busy / simulated_span) if simulated_span > 0 else 0.0
        )

        bound_by = "compute"
        if dram_limited > compute_total and dram_limited >= noc_limited:
            bound_by = "dram"
        elif noc_limited > compute_total:
            bound_by = "noc"

        return NoCResult(
            latency=elapsed,
            compute_cycles=compute_total,
            noc_cycles=noc_limited,
            dram_cycles=dram_limited,
            rounds_total=total_rounds,
            rounds_simulated=simulated,
            noc_bytes=noc_bytes,
            dram_bytes=dram.total_bytes,
            max_link_utilization=max_link_utilization,
            bound_by=bound_by,
        )

    def evaluate_latency(self, mapping: Mapping) -> float:
        """Convenience wrapper returning only the simulated latency."""
        return self.simulate(mapping).latency
