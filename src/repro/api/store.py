"""Content-addressed on-disk store of finished :class:`RunResult` envelopes.

The paper's sweeps re-run the same experiments constantly — across shell
sessions, CI jobs and notebook restarts — and the mapping cache only
de-duplicates *per-layer solves inside one process tree*.  The
:class:`ResultStore` closes the loop at the experiment level: every finished
run is persisted under the **fingerprint of its spec**, so resubmitting an
identical spec is a store hit that returns the stored envelope verbatim
without invoking any scheduler.

* Envelopes are the plain v1 :meth:`~repro.api.result.RunResult.to_dict`
  JSON — the store adds no wrapper, so a stored file round-trips through
  ``RunResult.from_json`` and is byte-for-byte what ``run()`` produced.
* The key (:func:`spec_fingerprint`) hashes the *result-determining* part of
  the spec: execution-only knobs (``jobs``, ``executor``, the mapping-cache
  path) are excluded, so a 1-job and an 8-job run of the same experiment
  share one entry, while everything that can change the payload (kind, axes,
  seed, options, evaluation batch size and time budget) splits entries.
* Writes go through :func:`repro.io_utils.atomic_write_json`, so concurrent
  services sharing one store directory never tear an envelope.

Job records (:class:`~repro.api.service.SchedulingService` bookkeeping for
``repro jobs`` / ``repro result``) live next to the envelopes:

```
<root>/results/<fingerprint>.json      # RunResult envelopes
<root>/jobs/<job_id>.json              # job records
<root>/jobs/<job_id>.events.ndjson     # one serialized event per line
```
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.api.result import RunResult
from repro.api.specs import RunSpec
from repro.digest import stable_digest
from repro.io_utils import atomic_write_json, atomic_write_text

#: ``EngineSpec`` keys that steer execution but cannot change the payload
#: (see the determinism notes in :mod:`repro.engine.engine`); they are
#: excluded from the spec fingerprint.  ``kernel_backend`` qualifies because
#: every evaluation backend is bit-identical (enforced by the kernel parity
#: tests), so a numpy and a numba run of one spec share a store entry.
EXECUTION_ONLY_ENGINE_KEYS = ("jobs", "executor", "cache", "kernel_backend")


def spec_fingerprint(spec: RunSpec) -> str:
    """Content hash of the result-determining part of ``spec``."""
    payload = spec.to_dict()
    payload["engine"] = {
        key: value
        for key, value in payload["engine"].items()
        if key not in EXECUTION_ONLY_ENGINE_KEYS
    }
    return stable_digest(payload)


@dataclass
class StoreStats:
    """Hit/miss counters of one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}


class ResultStore:
    """Spec-fingerprint-addressed directory of finished run envelopes.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).  One store may
        be shared by many services and processes; every write is atomic.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.stats = StoreStats()

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    def _result_path(self, fingerprint: str) -> Path:
        return self.results_dir / f"{fingerprint}.json"

    # -------------------------------------------------------------- envelopes
    def load(self, fingerprint: str) -> RunResult | None:
        """Envelope stored under ``fingerprint`` (no hit/miss counting)."""
        path = self._result_path(fingerprint)
        if not path.exists():
            return None
        return RunResult.from_json(path.read_text())

    def get(self, spec: RunSpec, fingerprint: str | None = None) -> RunResult | None:
        """Stored result of ``spec`` (``None`` on a miss; counted either way)."""
        result = self.load(fingerprint or spec_fingerprint(spec))
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def put(self, result: RunResult, fingerprint: str | None = None) -> Path:
        """Persist ``result`` under its spec's fingerprint, atomically."""
        fingerprint = fingerprint or spec_fingerprint(result.spec)
        self.stats.puts += 1
        return atomic_write_json(self._result_path(fingerprint), result.to_dict())

    def __contains__(self, spec: RunSpec) -> bool:
        """Membership test that does not touch the hit/miss counters."""
        return self._result_path(spec_fingerprint(spec)).exists()

    def __len__(self) -> int:
        if not self.results_dir.is_dir():
            return 0
        return sum(1 for _ in self.results_dir.glob("*.json"))

    # ------------------------------------------------------------ job records
    def allocate_job_id(self, fingerprint: str) -> str:
        """Mint the next job id: a 1-based ordinal plus the spec fingerprint.

        Ids sort chronologically (``job-000001-…``, ``job-000002-…``) and
        carry enough of the fingerprint to locate the result by eye.  The id
        is *reserved* by exclusively creating its record file, so concurrent
        services sharing one store directory can never mint the same id and
        overwrite each other's records (``O_EXCL`` arbitrates; losers retry
        with the next ordinal).
        """
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        index = len(list(self.jobs_dir.glob("job-*.json"))) + 1
        while True:
            job_id = f"job-{index:06d}-{fingerprint[:12]}"
            try:
                with open(self.jobs_dir / f"{job_id}.json", "x") as handle:
                    handle.write("{}\n")  # placeholder until record_job runs
                return job_id
            except FileExistsError:
                index += 1

    def record_job(self, record: dict) -> Path:
        """Persist one job record (see ``Job.to_dict``), atomically."""
        return atomic_write_json(self.jobs_dir / f"{record['job_id']}.json", record)

    def load_jobs(self) -> list[dict]:
        """Every persisted job record, sorted by job id (= submission order)."""
        if not self.jobs_dir.is_dir():
            return []
        records = []
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            record = json.loads(path.read_text())
            if record.get("job_id"):  # skip freshly reserved placeholders
                records.append(record)
        return records

    def load_job(self, job_id: str) -> dict | None:
        """One persisted job record, or ``None`` when unknown."""
        path = self.jobs_dir / f"{job_id}.json"
        if not path.exists():
            return None
        record = json.loads(path.read_text())
        return record if record.get("job_id") else None

    def events_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.events.ndjson"

    def record_events(self, job_id: str, events) -> Path:
        """Persist a job's full event log as NDJSON (one event per line)."""
        lines = "".join(json.dumps(event.to_dict()) + "\n" for event in events)
        return atomic_write_text(self.events_path(job_id), lines)
