"""Engine batch-size override: validation and budget-capped refusal."""

import pytest

from repro.arch import simba_like
from repro.baselines import RandomScheduler
from repro.engine import SchedulingEngine

ARCH = simba_like()


def test_engine_rejects_nonpositive_batch_size():
    with pytest.raises(ValueError):
        SchedulingEngine(RandomScheduler(ARCH), batch_size=0)


def test_engine_override_applies_to_budget_free_scheduler():
    scheduler = RandomScheduler(ARCH)
    before = scheduler.config_fingerprint()
    SchedulingEngine(scheduler, batch_size=128)
    assert scheduler.eval_batch_size == 128
    assert scheduler.config_fingerprint() == before  # fingerprint untouched


def test_engine_refuses_to_rekey_budget_capped_scheduler():
    scheduler = RandomScheduler(ARCH, time_budget_seconds=1.0, eval_batch_size=64)
    with pytest.raises(ValueError):
        SchedulingEngine(scheduler, batch_size=128)
    # A no-op override (same value) is allowed.
    SchedulingEngine(scheduler, batch_size=64)
    assert scheduler.eval_batch_size == 64
