"""Accelerator architecture description.

This subpackage models the hardware side of the scheduling problem: a spatial
array of processing elements (PEs), a multi-level software-managed memory
hierarchy, an on-chip network, and an energy table.  The baseline
configuration replicates the Simba-like accelerator of Table V of the paper;
:mod:`repro.arch.presets` also provides the two scaled variants used in
Fig. 9 (8x8 PE array and enlarged buffers) and the K80-like GPU target of
Sec. V-D.
"""

from repro.arch.memory import MemoryLevel, MemoryHierarchy
from repro.arch.spatial import PEArraySpec, NoCSpec
from repro.arch.energy import EnergyTable
from repro.arch.accelerator import Accelerator, Precision
from repro.arch.gpu import GPUSpec
from repro.arch.presets import (
    simba_like,
    pe_array_8x8,
    large_buffers,
    k80_like_gpu,
    gpu_k80,
    architecture_presets,
)

__all__ = [
    "MemoryLevel",
    "MemoryHierarchy",
    "PEArraySpec",
    "NoCSpec",
    "EnergyTable",
    "Accelerator",
    "Precision",
    "GPUSpec",
    "simba_like",
    "pe_array_8x8",
    "large_buffers",
    "k80_like_gpu",
    "gpu_k80",
    "architecture_presets",
]
