"""Drive the transaction-level NoC simulator directly.

Builds two hand-written schedules of the same DeepBench layer — one that
multicasts inputs to all PEs and one that forces unicast weight
distribution — and compares their behaviour on the mesh: latency, the
binding resource, and how hot the hottest link gets.  The architecture and
the evaluation platform resolve through the :mod:`repro.api` registries
(the same ``noc`` platform the CLI's ``--platform noc`` uses); the raw
simulator is then driven for the per-link detail the scalar platform value
does not expose.

Run:  python examples/noc_simulation.py
"""

from repro.api import RunSpec, architectures, platforms, run
from repro.mapping import Mapping
from repro.noc import NoCSimulator
from repro.workloads import layer_from_name


def build_mapping(layer, spatial_dim: str):
    """A simple schedule that maps 16-way parallelism onto ``spatial_dim``."""
    remaining = {dim: bound for dim, bound in layer.bounds.items()}
    spatial = {spatial_dim: 16}
    remaining[spatial_dim] //= 16
    return Mapping.from_factors(
        layer,
        temporal_factors=[
            {"R": layer.r, "S": layer.s},
            {"C": 4},
            {"C": remaining["C"] // 4},
            {"P": remaining["P"], "Q": remaining["Q"]},
            {"K": remaining["K"], "N": remaining["N"]},
            {},
        ],
        spatial_factors=[{}, {}, {}, {}, spatial, {}],
    )


def main() -> None:
    accelerator = architectures.create("baseline-4x4")
    evaluate = platforms.create("noc", accelerator)  # the CLI's --platform noc
    simulator = NoCSimulator(accelerator)
    layer = layer_from_name("3_14_128_256_1")

    print(f"Layer {layer}\n")
    for spatial_dim, description in (("K", "output channels across PEs (inputs multicast)"),
                                     ("P", "output rows across PEs (weights multicast)")):
        mapping = build_mapping(layer, spatial_dim)
        result = simulator.simulate(mapping)
        print(f"spatial dimension {spatial_dim}: {description}")
        print(f"  platform value   : {evaluate(mapping) / 1e6:.3f} MCycles (registry 'noc')")
        print(f"  latency          : {result.latency / 1e6:.3f} MCycles (bound by {result.bound_by})")
        print(f"  rounds           : {result.rounds_total} ({result.rounds_simulated} simulated)")
        print(f"  NoC payload      : {result.noc_bytes / 1024:.1f} KiB")
        print(f"  DRAM traffic     : {result.dram_bytes / 1024:.1f} KiB")
        print(f"  hottest link busy: {result.max_link_utilization:.1%}")
        print()

    # The declarative path reaches the same platform from a spec: schedule
    # the layer with CoSA and evaluate it on the simulated mesh.
    result = run(
        RunSpec.from_dict(
            {
                "kind": "schedule",
                "workload": {"layers": [layer.canonical_name]},
                "platform": "noc",
            }
        )
    )
    outcome = result.data["outcomes"][0]
    print(
        f"CoSA on the same layer: NoC-simulated latency "
        f"{outcome['platform_value'] / 1e6:.3f} MCycles"
    )


if __name__ == "__main__":
    main()
