"""The persistent, multi-process work queue of the solve fabric.

Every piece of state lives on disk under one *fabric root*, so any number of
worker processes — on one machine or across hosts sharing the directory —
coordinate without a broker::

    <fabric_root>/tasks/<task_id>.json     # task records (atomic writes)
    <fabric_root>/leases/<task_id>.lease   # O_EXCL claim arbitration
    <fabric_root>/inflight/<fingerprint>   # single-flight leader index
    <fabric_root>/journal.ndjson           # append-only transition audit

Correctness recipe
------------------
* **Atomic claim.**  A worker claims a task by exclusively creating its
  lease file (``O_EXCL``); the filesystem arbitrates, losers move on.  The
  lease body names the owner, a per-claim ``token`` and a ``deadline``.
* **Heartbeat.**  The owner renews the lease (atomic rewrite) well inside
  its TTL.  A renewal that finds the token replaced knows the lease was
  reclaimed and reports it lost — the worker stops claiming authority over
  the task (its store writes are harmless: content-addressed, identical).
* **Reclaim.**  Anyone may sweep expired leases: the lease file is atomically
  *renamed* to a per-sweeper tombstone (so two sweepers cannot both win),
  re-checked for expiry, then the task returns to ``pending`` with
  ``attempts`` incremented — or to ``dead`` (dead-letter) past
  ``max_attempts``.  An unexpired steal is restored.
* **Crash-safe journal.**  Transitions append single-``write`` NDJSON lines
  (:func:`repro.io_utils.append_ndjson`); a writer killed mid-append leaves
  at most one torn tail line, which readers skip.

Single-flight and priority
--------------------------
``enqueue`` arbitrates identical-spec dedup *through the queue*: the first
task for a fingerprint exclusively creates ``inflight/<fingerprint>`` and
becomes the leader; later enqueues (any tenant — the index is keyed by
content, not namespace) become followers that stay unclaimable until their
leader is terminal, then complete via the shared store without executing.
``claim`` preserves the gateway's two-lane weighted priority: interactive
tasks overtake batch, but one batch task is served per ``interactive_weight``
interactive claims so sweeps never starve.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.io_utils import append_ndjson, atomic_write_json, read_ndjson

#: Seconds a claim stays valid without a heartbeat renewal.
DEFAULT_LEASE_TTL = 30.0

#: Claims per task before it is dead-lettered (first attempt included).
DEFAULT_MAX_ATTEMPTS = 3

#: Interactive claims served per batch claim under load (mirrors the
#: gateway's ``TwoLevelPriorityQueue`` weight).
DEFAULT_INTERACTIVE_WEIGHT = 4


class TaskState:
    """String states of a task record (a str enum without the import)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    DEAD = "dead"

    TERMINAL = (DONE, FAILED, CANCELLED, DEAD)


@dataclass
class Claim:
    """One successfully claimed task: the record plus the lease handle."""

    task: dict
    worker_id: str
    token: str
    lease_path: Path

    @property
    def task_id(self) -> str:
        return self.task["task_id"]


class WorkQueue:
    """One fabric root's task queue.  Instances are cheap; state is on disk.

    Parameters
    ----------
    root:
        The fabric root directory (created on demand).
    lease_ttl:
        Seconds a claim survives without renewal before reclaim.
    max_attempts:
        Claims per task before dead-lettering.
    interactive_weight:
        Interactive claims served per batch claim when both lanes wait.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        interactive_weight: int = DEFAULT_INTERACTIVE_WEIGHT,
    ):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if interactive_weight < 1:
            raise ValueError(
                f"interactive_weight must be >= 1, got {interactive_weight}"
            )
        self.root = Path(root)
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.interactive_weight = interactive_weight
        self._alloc_lock = threading.Lock()
        self._next_ordinal: int | None = None
        self._streak = 0  # consecutive interactive claims (per instance)

    # ----------------------------------------------------------------- paths
    @property
    def tasks_dir(self) -> Path:
        return self.root / "tasks"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def inflight_dir(self) -> Path:
        return self.root / "inflight"

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.ndjson"

    def task_path(self, task_id: str) -> Path:
        return self.tasks_dir / f"{task_id}.json"

    def lease_path(self, task_id: str) -> Path:
        return self.leases_dir / f"{task_id}.lease"

    # --------------------------------------------------------------- journal
    def journal(self, event: str, task_id: str, **fields) -> None:
        append_ndjson(
            self.journal_path,
            {"ts": time.time(), "event": event, "task": task_id, **fields},
        )

    def read_journal(self) -> list[dict]:
        """Every journal line (torn tail skipped), oldest first."""
        return read_ndjson(self.journal_path)

    # ----------------------------------------------------------------- tasks
    def load_task(self, task_id: str) -> dict | None:
        try:
            record = json.loads(self.task_path(task_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) and record.get("task_id") else None

    def _write_task(self, record: dict) -> None:
        atomic_write_json(self.task_path(record["task_id"]), record)

    def tasks(self) -> list[dict]:
        """Every readable task record, in task-id (= enqueue) order."""
        if not self.tasks_dir.is_dir():
            return []
        records = []
        for path in sorted(self.tasks_dir.glob("task-*.json")):
            record = self.load_task(path.stem)
            if record is not None:
                records.append(record)
        return records

    def _allocate_task_id(self) -> str:
        """Mint the next global task ordinal (``O_EXCL`` reserved)."""
        with self._alloc_lock:
            self.tasks_dir.mkdir(parents=True, exist_ok=True)
            if self._next_ordinal is None:
                highest = 0
                for path in self.tasks_dir.glob("task-*.json"):
                    digits = path.name[len("task-") : len("task-") + 6]
                    if digits.isdigit():
                        highest = max(highest, int(digits))
                self._next_ordinal = highest + 1
            index = self._next_ordinal
            while True:
                task_id = f"task-{index:06d}"
                try:
                    with open(self.task_path(task_id), "x") as handle:
                        handle.write("{}\n")
                except FileExistsError:
                    index += 1
                    continue
                self._next_ordinal = index + 1
                return task_id

    # --------------------------------------------------------------- enqueue
    def enqueue(
        self,
        spec_dict: dict,
        fingerprint: str,
        *,
        job_id: str,
        store_root: str,
        results_root: str | None = None,
        job_prefix: str = "",
        tenant: str = "",
        priority: str = "interactive",
    ) -> dict:
        """Persist one task and return its record.

        ``spec_dict`` is the serialized :class:`~repro.api.specs.RunSpec`;
        ``store_root``/``results_root``/``job_prefix`` tell the executing
        worker where the job's records and the shared envelope tier live.
        Identical fingerprints are single-flighted: the first in-flight task
        leads, later ones ride as followers (see module docstring).
        """
        task_id = self._allocate_task_id()
        leader = self._single_flight_leader(fingerprint, task_id)
        record = {
            "task_id": task_id,
            "state": TaskState.PENDING,
            "job_id": job_id,
            "tenant": tenant,
            "priority": priority if priority == "batch" else "interactive",
            "spec": spec_dict,
            "fingerprint": fingerprint,
            "store_root": str(store_root),
            "results_root": None if results_root is None else str(results_root),
            "job_prefix": job_prefix,
            "attempts": 0,
            "max_attempts": self.max_attempts,
            "leader": leader,
            "error": None,
            "store_hit": False,
            "enqueued_at": time.time(),
        }
        self._write_task(record)
        self.journal(
            "enqueued",
            task_id,
            job_id=job_id,
            tenant=tenant,
            priority=record["priority"],
            fingerprint=fingerprint,
            leader=leader,
        )
        return record

    def _single_flight_leader(self, fingerprint: str, task_id: str) -> str | None:
        """Register ``task_id`` as the fingerprint's leader, or name its leader.

        The in-flight index entry is created ``O_EXCL``; when creation loses,
        the existing entry names the leader.  A leader settling (removing the
        entry) between our failed create and the read just means the flight
        is over — retry, we become the new leader.
        """
        self.inflight_dir.mkdir(parents=True, exist_ok=True)
        path = self.inflight_dir / fingerprint
        while True:
            try:
                with open(path, "x") as handle:
                    handle.write(task_id + "\n")
                return None
            except FileExistsError:
                try:
                    leader = path.read_text().strip()
                except FileNotFoundError:
                    continue  # the flight settled under us; try to lead
                if leader and leader != task_id:
                    return leader
                return None

    def _settle_flight(self, task: dict) -> None:
        """Drop the in-flight index entry once its leader turns terminal."""
        if task.get("leader") is not None:
            return  # followers never own the index entry
        path = self.inflight_dir / task["fingerprint"]
        try:
            if path.read_text().strip() == task["task_id"]:
                path.unlink(missing_ok=True)
        except FileNotFoundError:
            pass

    # ----------------------------------------------------------------- claim
    def claim(self, worker_id: str) -> Claim | None:
        """Claim the next eligible task for ``worker_id`` (``None`` when idle).

        Scans pending tasks in enqueue order, two lanes weighted like the
        gateway queue.  Followers whose leader is still in flight are
        skipped — once the leader is terminal they become claimable and
        complete via the shared store.  Claiming is an ``O_EXCL`` lease-file
        creation, so concurrent workers never double-claim.
        """
        interactive, batch = [], []
        for record in self.tasks():
            if record["state"] != TaskState.PENDING:
                continue
            if not self._follower_claimable(record):
                continue
            (batch if record["priority"] == "batch" else interactive).append(record)
        while interactive or batch:
            serve_batch = bool(batch) and (
                not interactive or self._streak >= self.interactive_weight
            )
            if serve_batch:
                self._streak = 0
                record = batch.pop(0)
            else:
                self._streak += 1
                record = interactive.pop(0)
            claim = self._try_claim(record, worker_id)
            if claim is not None:
                return claim
        return None

    def _follower_claimable(self, record: dict) -> bool:
        leader_id = record.get("leader")
        if leader_id is None:
            return True
        leader = self.load_task(leader_id)
        if leader is None:
            return True  # unreadable leader must not strand followers
        return leader["state"] in TaskState.TERMINAL

    def _try_claim(self, record: dict, worker_id: str) -> Claim | None:
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        task_id = record["task_id"]
        lease_path = self.lease_path(task_id)
        token = uuid.uuid4().hex
        lease = {
            "worker": worker_id,
            "token": token,
            "deadline": time.time() + self.lease_ttl,
            "attempt": record["attempts"] + 1,
        }
        try:
            with open(lease_path, "x") as handle:
                handle.write(json.dumps(lease) + "\n")
        except FileExistsError:
            return None  # someone else holds (or is cancelling) it
        # Re-read the record *after* winning the lease: a cancel or reclaim
        # that landed before our O_EXCL would have changed it.
        current = self.load_task(task_id)
        if current is None or current["state"] != TaskState.PENDING:
            lease_path.unlink(missing_ok=True)
            return None
        current["state"] = TaskState.RUNNING
        current["attempts"] = current["attempts"] + 1
        current["worker"] = worker_id
        self._write_task(current)
        self.journal(
            "claimed",
            task_id,
            worker=worker_id,
            attempt=current["attempts"],
            job_id=current["job_id"],
        )
        return Claim(task=current, worker_id=worker_id, token=token, lease_path=lease_path)

    # ------------------------------------------------------------- heartbeat
    def heartbeat(self, claim: Claim) -> bool:
        """Renew ``claim``'s lease; ``False`` means the lease was lost.

        A lost lease (reclaimed by a sweeper that considered this worker
        dead) demotes the claim: the worker must stop reporting completion
        for it.  Renewal is a read-check-rewrite; the token check prevents
        resurrecting a lease someone else already owns.
        """
        try:
            lease = json.loads(claim.lease_path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        if lease.get("token") != claim.token:
            return False
        lease["deadline"] = time.time() + self.lease_ttl
        atomic_write_json(claim.lease_path, lease, indent=None)
        return True

    # --------------------------------------------------------------- reclaim
    def reclaim_expired(self, sweeper: str = "sweeper") -> list[str]:
        """Return expired-lease tasks to ``pending`` (or dead-letter them).

        Anyone may sweep.  The lease is atomically renamed to a per-sweeper
        tombstone first, so two concurrent sweepers cannot both reclaim one
        task; an unexpired lease grabbed by mistake is restored untouched.
        Returns the reclaimed task ids (dead-lettered ones included).
        """
        if not self.leases_dir.is_dir():
            return []
        reclaimed = []
        now = time.time()
        for lease_path in list(self.leases_dir.glob("*.lease")):
            task_id = lease_path.stem
            try:
                lease = json.loads(lease_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # torn lease mid-write; next sweep sees it whole
            task = self.load_task(task_id)
            if task is not None and task["state"] in TaskState.TERMINAL:
                lease_path.unlink(missing_ok=True)  # stale lease of a done task
                continue
            if lease.get("deadline", 0) > now:
                continue
            tomb = lease_path.with_suffix(f".reclaim.{os.getpid()}.{id(self)}")
            try:
                os.replace(lease_path, tomb)
            except FileNotFoundError:
                continue  # another sweeper won
            try:
                current = json.loads(tomb.read_text())
            except (OSError, json.JSONDecodeError):
                current = lease
            if current.get("deadline", 0) > now:
                os.replace(tomb, lease_path)  # renewed under us; restore
                continue
            tomb.unlink(missing_ok=True)
            if task is None:
                continue
            if task["attempts"] >= task["max_attempts"]:
                task["state"] = TaskState.DEAD
                task["error"] = {
                    "type": "LeaseExpired",
                    "message": (
                        f"worker {current.get('worker')!r} lease expired after "
                        f"attempt {task['attempts']}/{task['max_attempts']}"
                    ),
                }
                self._write_task(task)
                self._settle_flight(task)
                self.journal(
                    "dead", task_id, worker=current.get("worker"),
                    attempts=task["attempts"], job_id=task["job_id"],
                )
            else:
                task["state"] = TaskState.PENDING
                task["worker"] = None
                self._write_task(task)
                self.journal(
                    "reclaimed", task_id, worker=current.get("worker"),
                    attempts=task["attempts"], sweeper=sweeper, job_id=task["job_id"],
                )
            reclaimed.append(task_id)
        return reclaimed

    # ------------------------------------------------------------ completion
    def _finish(self, claim: Claim, state: str, **fields) -> bool:
        """Move a claimed task to a terminal state if the lease still holds."""
        if not self.heartbeat(claim):  # re-validates ownership atomically
            self.journal("lost", claim.task_id, worker=claim.worker_id, state=state)
            return False
        task = self.load_task(claim.task_id)
        if task is None or task["state"] != TaskState.RUNNING:
            claim.lease_path.unlink(missing_ok=True)
            return False
        task["state"] = state
        task.update(fields)
        task["finished_at"] = time.time()
        self._write_task(task)
        self._settle_flight(task)
        claim.lease_path.unlink(missing_ok=True)
        return True

    def complete(self, claim: Claim, *, store_hit: bool = False) -> bool:
        """Mark a claimed task done; ``False`` when the lease was lost."""
        done = self._finish(claim, TaskState.DONE, store_hit=store_hit)
        if done:
            self.journal(
                "completed",
                claim.task_id,
                worker=claim.worker_id,
                store_hit=store_hit,
                job_id=claim.task["job_id"],
            )
        return done

    def fail(self, claim: Claim, error: BaseException | dict) -> bool:
        """Mark a claimed task failed (a real execution error, not a crash)."""
        if isinstance(error, BaseException):
            error = {"type": type(error).__name__, "message": str(error)}
        failed = self._finish(claim, TaskState.FAILED, error=error)
        if failed:
            self.journal(
                "failed",
                claim.task_id,
                worker=claim.worker_id,
                error=error.get("type"),
                job_id=claim.task["job_id"],
            )
        return failed

    def release(self, claim: Claim) -> bool:
        """Return a claimed task to ``pending`` (graceful worker shutdown)."""
        if not self.heartbeat(claim):
            return False
        task = self.load_task(claim.task_id)
        if task is None or task["state"] != TaskState.RUNNING:
            claim.lease_path.unlink(missing_ok=True)
            return False
        task["state"] = TaskState.PENDING
        task["worker"] = None
        task["attempts"] = max(0, task["attempts"] - 1)  # a release is not a strike
        self._write_task(task)
        claim.lease_path.unlink(missing_ok=True)
        self.journal("released", claim.task_id, worker=claim.worker_id)
        return True

    # ---------------------------------------------------------- cancellation
    def cancel(self, task_id: str) -> bool:
        """Cancel a still-pending task; ``False`` once it is claimed/terminal.

        Cancellation *claims the lease* (``O_EXCL``, like a worker) so it can
        never race an executing worker: either the cancel wins the lease and
        the task is dead before any worker sees it, or a worker holds the
        lease and the cancel reports ``False``.
        """
        task = self.load_task(task_id)
        if task is None or task["state"] != TaskState.PENDING:
            return False
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        lease_path = self.lease_path(task_id)
        try:
            with open(lease_path, "x") as handle:
                handle.write(json.dumps({"worker": "__cancel__", "deadline": 0}) + "\n")
        except FileExistsError:
            return False
        try:
            task = self.load_task(task_id)
            if task is None or task["state"] != TaskState.PENDING:
                return False
            task["state"] = TaskState.CANCELLED
            self._write_task(task)
            self._settle_flight(task)
            self.journal("cancelled", task_id, job_id=task["job_id"])
            return True
        finally:
            lease_path.unlink(missing_ok=True)

    # ------------------------------------------------------------- summaries
    def stats(self) -> dict:
        """Counts by state plus lane depths (one scan; JSON-ready)."""
        by_state: dict[str, int] = {}
        lanes = {"interactive": 0, "batch": 0}
        for record in self.tasks():
            by_state[record["state"]] = by_state.get(record["state"], 0) + 1
            if record["state"] == TaskState.PENDING:
                lanes[record["priority"]] += 1
        return {
            "root": str(self.root),
            "by_state": dict(sorted(by_state.items())),
            "pending_by_lane": lanes,
            "leases": sum(1 for _ in self.leases_dir.glob("*.lease"))
            if self.leases_dir.is_dir()
            else 0,
        }
