"""Solver result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.solver.expr import LinearExpr, Variable


class SolveStatus(Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"


@dataclass
class Solution:
    """Result of solving a :class:`~repro.solver.model.MIPModel`.

    Attributes
    ----------
    status:
        Solve outcome.
    objective:
        Objective value (``nan`` unless a feasible point was found).
    values:
        Variable assignment keyed by :class:`Variable`.
    solve_time_seconds:
        Wall-clock time spent in the backend.
    iterations:
        Backend-specific work counter (LP relaxations explored for the
        branch-and-bound backend, 0 for HiGHS which does not report it).
    """

    status: SolveStatus
    objective: float = float("nan")
    values: dict[Variable, float] = field(default_factory=dict)
    solve_time_seconds: float = 0.0
    iterations: int = 0

    @property
    def is_optimal(self) -> bool:
        """True when the backend proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    def value(self, item: Variable | LinearExpr) -> float:
        """Value of a variable or expression under this solution."""
        if isinstance(item, Variable):
            return self.values.get(item, 0.0)
        return item.evaluate(self.values)

    def rounded(self, item: Variable | LinearExpr) -> int:
        """Value rounded to the nearest integer (for binary/integer variables)."""
        return int(round(self.value(item)))
