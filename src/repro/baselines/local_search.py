"""Move-based local search with DDFW-style adaptive constraint weights.

Instead of redrawing whole mappings, this scheduler walks the map space one
*move* at a time — relocating a single prime factor between (level,
temporal/spatial) slots, swapping two temporal loops, or flipping a factor
between temporal and spatial at one level (:mod:`repro.mapping.moves`).
Candidate moves are costed incrementally by the
:class:`~repro.model.delta.DeltaEvaluator`, which re-derives only the
per-level terms a move touches and is bit-identical to a full re-evaluation,
so ``use_delta`` is purely a speed knob.

Guidance borrows the *divide and distribute fixed weights* (DDFW) idea from
SAT local search: each constraint group — buffer **capacity**, spatial
**fanout**, and a soft compute-**utilization** target — carries a weight, and
the search minimises ``cost/ref + sum(weight * violation)``.  The raw cost
term stays finite even for invalid states, so the search can cross
infeasible regions instead of rejecting them outright.  On a plateau (no
proposed move improves the guidance), weight is *transferred* from the
maximum-weight satisfied group to every violated group
(``weight_transfer * donor + weight_increment`` each), re-shaping the
landscape until the violated constraints dominate and the search is pushed
back into the feasible region; with a small ``perturbation`` probability the
best proposal is committed anyway (random-walk escape).

The final winner is always re-costed by the scalar
:class:`~repro.model.cost.CostModel` oracle.
"""

from __future__ import annotations

import math
import random
import time

from repro.arch.accelerator import Accelerator
from repro.baselines.base import SearchResult, SearchScheduler, stable_layer_seed
from repro.mapping.moves import MappingState
from repro.mapping.space import MapSpace
from repro.model.cost import CostModel
from repro.model.delta import DeltaCostResult, DeltaEvaluator
from repro.workloads.layer import Layer

#: Constraint groups carrying DDFW weights.
CONSTRAINT_GROUPS = ("capacity", "spatial", "utilization")

#: Weights never decay below this floor, so no group is ever ignored.
MIN_WEIGHT = 0.1


class LocalSearchScheduler(SearchScheduler):
    """Delta-evaluated local search guided by adaptive constraint weights.

    Parameters
    ----------
    accelerator:
        Target architecture.
    metric:
        ``"latency"``, ``"energy"`` or ``"edp"``.
    seed:
        Base seed; perturbed per layer like the other baselines.
    max_evaluations:
        Total cost-evaluation budget per layer (initial samples plus one per
        previewed move) — the unit for equal-budget comparisons against the
        sampling baselines.
    init_samples:
        Random draws scored to pick the starting state (the best valid draw,
        else the first).
    moves_per_step:
        Candidate moves previewed per step; the best by guidance is
        committed when it improves on the current state.
    weight_transfer / weight_increment:
        DDFW transfer rule: on a plateau every violated group receives
        ``weight_transfer * donor_weight + weight_increment`` from the
        maximum-weight satisfied group (or just the increment when every
        group is violated).
    perturbation:
        Probability of committing the best proposal on a plateau even though
        it worsens the guidance (random-walk escape).
    restart_after:
        Steps without improving the best valid cost before the search
        restarts from a fresh best-of-``init_samples`` seed with reset
        weights (escapes basins no single move leads out of).
    utilization_target:
        Soft lower bound on compute utilization; the shortfall
        ``max(0, target - utilization) / target`` is the violation of the
        ``"utilization"`` group.  ``0`` disables the group.
    use_delta:
        Cost proposals incrementally (default) or by full re-evaluation.
        Both are bit-identical (enforced by the parity tests), so this knob
        never changes the outcome and stays out of the fingerprint.
    eval_batch_size / time_budget_seconds / kernel_backend:
        See :class:`~repro.baselines.base.SearchScheduler`; they affect the
        initial sampling phase exactly as in the other baselines.
    """

    name = "local-search"

    def __init__(
        self,
        accelerator: Accelerator,
        metric: str = "latency",
        seed: int = 0,
        max_evaluations: int = 4000,
        init_samples: int = 64,
        moves_per_step: int = 8,
        weight_transfer: float = 0.2,
        weight_increment: float = 1.0,
        perturbation: float = 0.1,
        restart_after: int = 30,
        utilization_target: float = 0.5,
        use_delta: bool = True,
        eval_batch_size: int | None = None,
        time_budget_seconds: float | None = None,
        kernel_backend: str | None = None,
    ):
        super().__init__(
            metric,
            eval_batch_size=eval_batch_size,
            time_budget_seconds=time_budget_seconds,
            kernel_backend=kernel_backend,
        )
        if max_evaluations < 1:
            raise ValueError(f"max_evaluations must be >= 1, got {max_evaluations}")
        if init_samples < 1:
            raise ValueError(f"init_samples must be >= 1, got {init_samples}")
        if moves_per_step < 1:
            raise ValueError(f"moves_per_step must be >= 1, got {moves_per_step}")
        if weight_transfer < 0 or weight_increment < 0:
            raise ValueError("weight_transfer and weight_increment must be >= 0")
        if not 0.0 <= perturbation <= 1.0:
            raise ValueError("perturbation must be within [0, 1]")
        if restart_after < 1:
            raise ValueError(f"restart_after must be >= 1, got {restart_after}")
        if utilization_target < 0 or utilization_target > 1:
            raise ValueError("utilization_target must be within [0, 1]")
        self.accelerator = accelerator
        self.seed = seed
        self.max_evaluations = max_evaluations
        self.init_samples = init_samples
        self.moves_per_step = moves_per_step
        self.weight_transfer = weight_transfer
        self.weight_increment = weight_increment
        self.perturbation = perturbation
        self.restart_after = restart_after
        self.utilization_target = utilization_target
        self.use_delta = use_delta
        self._cost_model = CostModel(accelerator)

    def _config(self) -> dict:
        # ``use_delta`` is deliberately absent: delta and full evaluation are
        # bit-identical, so the knob cannot change the produced mapping.
        return {
            **super()._config(),
            "seed": self.seed,
            "max_evaluations": self.max_evaluations,
            "init_samples": self.init_samples,
            "moves_per_step": self.moves_per_step,
            "weight_transfer": self.weight_transfer,
            "weight_increment": self.weight_increment,
            "perturbation": self.perturbation,
            "restart_after": self.restart_after,
            "utilization_target": self.utilization_target,
        }

    # ----------------------------------------------------------------- search
    def schedule(self, layer: Layer) -> SearchResult:
        """Run the weighted local search for ``layer``."""
        start = time.perf_counter()
        deadline = self._deadline(start)
        rng = random.Random(stable_layer_seed(self.seed, layer.canonical_name))
        space = MapSpace(layer, self.accelerator)
        fanouts = space.spatial_fanouts

        evaluations = 0
        best_state: MappingState | None = None
        best_score = float("inf")
        state = evaluator = current = None
        ref = 1.0
        weights = {group: 1.0 for group in CONSTRAINT_GROUPS}
        stalled = 0

        while evaluations < self.max_evaluations and not self._out_of_time(deadline):
            if state is None:
                # (Re)seed: best valid of a random batch, else the first draw.
                num_init = min(self.init_samples, self.max_evaluations - evaluations)
                draws = space.sample_batch(num_init, rng)
                valid, scores = self._score_draws(draws)
                evaluations += num_init
                seed_index = 0
                seed_score = float("inf")
                for i in range(len(draws)):
                    if valid[i] and scores[i] < seed_score:
                        seed_index, seed_score = i, float(scores[i])
                state = space.initial_state(draws, seed_index)
                evaluator = DeltaEvaluator(state, self.accelerator)
                current = evaluator.evaluate()
                if current.valid and current.score(self.metric) < best_score:
                    best_state, best_score = state.clone(), current.score(self.metric)
                ref = current.raw_score(self.metric)
                if not math.isfinite(ref) or ref <= 0.0:
                    ref = 1.0
                weights = {group: 1.0 for group in CONSTRAINT_GROUPS}
                stalled = 0
                continue

            budget = self.max_evaluations - evaluations
            moves = space.neighborhood(state, rng, min(self.moves_per_step, budget))
            if not moves:
                break  # frozen state: every loop bound is 1

            improved_best = False
            best_move = None
            best_result: DeltaCostResult | None = None
            best_guidance = float("inf")
            for move in moves:
                result = self._preview(evaluator, move)
                evaluations += 1
                guidance = self._guidance(result, weights, ref)
                if guidance < best_guidance:
                    best_move, best_result, best_guidance = move, result, guidance
                if result.valid and result.score(self.metric) < best_score:
                    undo = state.apply(move)
                    best_state, best_score = state.clone(), result.score(self.metric)
                    state.undo(undo)
                    improved_best = True

            stalled = 0 if improved_best else stalled + 1
            if stalled >= self.restart_after:
                state = None  # basin exhausted: restart from a fresh seed
                continue
            if best_move is None:
                continue
            if best_guidance < self._guidance(current, weights, ref):
                current = self._commit(evaluator, best_move)
                continue

            # Plateau: re-shape the landscape (DDFW weight transfer), then
            # optionally random-walk through it.
            self._transfer_weights(weights, current)
            if rng.random() < self.perturbation:
                current = self._commit(evaluator, best_move)

        best_mapping = best_state.to_mapping() if best_state is not None else None
        best_cost = self._cost_model.evaluate(best_mapping) if best_mapping is not None else None
        return SearchResult(
            mapping=best_mapping,
            cost=best_cost,
            num_sampled=evaluations,
            num_evaluated=evaluations,
            elapsed_seconds=time.perf_counter() - start,
        )

    def schedule_network(self, layers) -> list[SearchResult]:
        """Schedule every layer of a network independently."""
        return [self.schedule(layer) for layer in layers]

    # ------------------------------------------------------------- evaluation
    def _preview(self, evaluator: DeltaEvaluator, move) -> DeltaCostResult:
        """Cost of ``move`` without keeping it applied."""
        if self.use_delta:
            return evaluator.preview(move)
        undo = evaluator.state.apply(move)
        evaluator.reset()
        result = evaluator.evaluate()
        evaluator.state.undo(undo)
        evaluator.reset()
        return result

    def _commit(self, evaluator: DeltaEvaluator, move) -> DeltaCostResult:
        """Apply ``move`` for good and return the new state's cost."""
        if self.use_delta:
            result, _ = evaluator.apply(move)
            return result
        evaluator.state.apply(move)
        evaluator.reset()
        return evaluator.evaluate()

    # --------------------------------------------------------------- guidance
    def _violations(self, result: DeltaCostResult) -> dict[str, float]:
        """Per-group violation magnitudes of a (possibly invalid) state."""
        shortfall = 0.0
        if self.utilization_target > 0:
            shortfall = max(0.0, self.utilization_target - result.raw_utilization)
            shortfall /= self.utilization_target
        return {
            "capacity": result.capacity_violation,
            "spatial": result.spatial_violation,
            "utilization": shortfall,
        }

    def _guidance(self, result: DeltaCostResult, weights: dict, ref: float) -> float:
        """Weighted objective: normalized raw cost plus weighted violations."""
        violations = self._violations(result)
        guidance = result.raw_score(self.metric) / ref
        for group in CONSTRAINT_GROUPS:
            guidance += weights[group] * violations[group]
        return guidance

    def _transfer_weights(self, weights: dict, current: DeltaCostResult) -> None:
        """DDFW plateau rule: move weight from satisfied onto violated groups."""
        violations = self._violations(current)
        violated = [g for g in CONSTRAINT_GROUPS if violations[g] > 0]
        satisfied = [g for g in CONSTRAINT_GROUPS if violations[g] == 0]
        if not violated:
            return
        if satisfied:
            donor = max(satisfied, key=lambda g: weights[g])
            for group in violated:
                amount = self.weight_transfer * weights[donor] + self.weight_increment
                amount = min(amount, weights[donor] - MIN_WEIGHT)
                if amount > 0:
                    weights[donor] -= amount
                    weights[group] += amount
                else:
                    weights[group] += self.weight_increment
        else:
            for group in violated:
                weights[group] += self.weight_increment
