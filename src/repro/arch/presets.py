"""Ready-made accelerator configurations used in the paper's evaluation.

* :func:`simba_like` — the baseline architecture of Table V (4x4 PE mesh,
  64 MACs/PE, 64 B registers, 3 KB accumulation buffer, 32 KB weight buffer,
  8 KB input buffer per PE, 128 KB shared global buffer).
* :func:`pe_array_8x8` — the Fig. 9a variant: 4x the PEs with 2x on-chip and
  DRAM bandwidth.
* :func:`large_buffers` — the Fig. 9b variant: per-PE buffers doubled and the
  global buffer enlarged 8x.
* :func:`k80_like_gpu` — the GPU target of Sec. V-D.
"""

from __future__ import annotations

from repro.arch.accelerator import Accelerator, Precision
from repro.arch.energy import EnergyTable
from repro.arch.gpu import GPUSpec
from repro.arch.memory import MemoryHierarchy, MemoryLevel
from repro.arch.spatial import NoCSpec, PEArraySpec
from repro.workloads.layer import TensorKind

_KB = 1024


def _simba_hierarchy(
    num_pes: int,
    macs_per_pe: int,
    accum_kb: float = 3.0,
    weight_kb: float = 32.0,
    input_kb: float = 8.0,
    global_kb: float = 128.0,
    register_bytes: int = 64,
) -> MemoryHierarchy:
    """Build the Simba-like six-level hierarchy of Table V / Table IV(B)."""
    return MemoryHierarchy(
        [
            MemoryLevel(
                # Weight registers next to the MAC lanes (64 B per PE holds one
                # 8-bit weight per lane), as in the Simba PE datapath.
                name="Registers",
                capacity_bytes=register_bytes,
                tensors=frozenset({TensorKind.WEIGHT}),
                spatial_fanout=macs_per_pe,
                bandwidth_words_per_cycle=float(macs_per_pe),
            ),
            MemoryLevel(
                name="AccumulationBuffer",
                capacity_bytes=int(accum_kb * _KB),
                tensors=frozenset({TensorKind.OUTPUT}),
                spatial_fanout=1,
                bandwidth_words_per_cycle=16.0,
            ),
            MemoryLevel(
                name="WeightBuffer",
                capacity_bytes=int(weight_kb * _KB),
                tensors=frozenset({TensorKind.WEIGHT}),
                spatial_fanout=1,
                bandwidth_words_per_cycle=16.0,
            ),
            MemoryLevel(
                name="InputBuffer",
                capacity_bytes=int(input_kb * _KB),
                tensors=frozenset({TensorKind.INPUT}),
                spatial_fanout=1,
                bandwidth_words_per_cycle=16.0,
            ),
            MemoryLevel(
                name="GlobalBuffer",
                capacity_bytes=int(global_kb * _KB),
                tensors=frozenset({TensorKind.INPUT, TensorKind.OUTPUT}),
                spatial_fanout=num_pes,
                bandwidth_words_per_cycle=32.0,
            ),
            MemoryLevel(
                name="DRAM",
                capacity_bytes=None,
                tensors=frozenset({TensorKind.WEIGHT, TensorKind.INPUT, TensorKind.OUTPUT}),
                spatial_fanout=1,
                bandwidth_words_per_cycle=8.0,
            ),
        ]
    )


def simba_like(rows: int = 4, cols: int = 4) -> Accelerator:
    """The baseline DNN accelerator of Table V (default 4x4 PE mesh)."""
    pe_array = PEArraySpec(rows=rows, cols=cols, macs_per_pe=64)
    hierarchy = _simba_hierarchy(num_pes=pe_array.num_pes, macs_per_pe=pe_array.macs_per_pe)
    return Accelerator(
        name=f"simba-{rows}x{cols}",
        hierarchy=hierarchy,
        pe_array=pe_array,
        noc=NoCSpec(),
        precision=Precision(weight_bytes=1, input_bytes=1, output_bytes=3),
        energy=EnergyTable(),
    )


def pe_array_8x8() -> Accelerator:
    """Fig. 9a variant: 8x8 PEs with 2x on-chip and DRAM bandwidth."""
    pe_array = PEArraySpec(rows=8, cols=8, macs_per_pe=64)
    hierarchy = _simba_hierarchy(num_pes=pe_array.num_pes, macs_per_pe=pe_array.macs_per_pe)
    return Accelerator(
        name="simba-8x8",
        hierarchy=hierarchy,
        pe_array=pe_array,
        noc=NoCSpec().scaled_bandwidth(2.0),
        precision=Precision(weight_bytes=1, input_bytes=1, output_bytes=3),
        energy=EnergyTable(),
    )


def large_buffers() -> Accelerator:
    """Fig. 9b variant: per-PE buffers doubled, global buffer enlarged 8x."""
    pe_array = PEArraySpec(rows=4, cols=4, macs_per_pe=64)
    hierarchy = _simba_hierarchy(
        num_pes=pe_array.num_pes,
        macs_per_pe=pe_array.macs_per_pe,
        accum_kb=6.0,
        weight_kb=64.0,
        input_kb=16.0,
        global_kb=1024.0,
    )
    return Accelerator(
        name="simba-4x4-large-buffers",
        hierarchy=hierarchy,
        pe_array=pe_array,
        noc=NoCSpec(),
        precision=Precision(weight_bytes=1, input_bytes=1, output_bytes=3),
        energy=EnergyTable(),
    )


def k80_like_gpu() -> GPUSpec:
    """The NVIDIA K80-like GPU target used in Sec. V-D."""
    return GPUSpec()


def gpu_k80() -> Accelerator:
    """The K80-like GPU expressed with the spatial-accelerator abstractions.

    This is the architecture the ``gpu`` scheduler targets: thread blocks as
    spatial levels, shared memory / the register file as buffers (see
    :func:`repro.arch.gpu.gpu_as_accelerator`).
    """
    from repro.arch.gpu import gpu_as_accelerator

    return gpu_as_accelerator(k80_like_gpu())


def architecture_presets() -> dict[str, Accelerator]:
    """All spatial-accelerator presets keyed by the name used in reports."""
    return {
        "baseline-4x4": simba_like(),
        "pe-8x8": pe_array_8x8(),
        "large-buffers": large_buffers(),
    }
