"""The distributed solve fabric: a persistent work queue drained by workers.

Since PR 4 every job has run on one bounded thread pool inside one process;
the PR 7 gateway put a wire protocol on that single-host ceiling.  This
package is the scale-out layer underneath both:

* :mod:`repro.fabric.queue` — a crash-safe on-disk work queue any number of
  processes (or NFS-sharing hosts) can enqueue into and claim from: atomic
  ``O_EXCL`` lease files arbitrate claims, leases carry a TTL renewed by
  worker heartbeats, expired leases are reclaimed with a bounded retry
  count and dead-lettered past it, and an append-only NDJSON journal audits
  every transition;
* :mod:`repro.fabric.worker` — the ``repro worker`` process: claim, execute
  through the same :mod:`repro.api.runner` path as a local ``run()``
  (envelopes are bit-identical), stream the typed event protocol into the
  job's NDJSON log, heartbeat while solving, release cleanly on SIGTERM.

:class:`~repro.api.service.SchedulingService` (and therefore the gateway)
gains ``backend="fabric"``: submissions enqueue here instead of onto the
in-process pool, and N external ``repro worker`` processes drain them.  See
``docs/fabric.md``.
"""

from repro.fabric.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    Claim,
    TaskState,
    WorkQueue,
)
from repro.fabric.worker import FabricWorker

__all__ = [
    "Claim",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "FabricWorker",
    "TaskState",
    "WorkQueue",
]
