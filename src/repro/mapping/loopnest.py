"""Loop-nest rendering (Listing 1 style).

Produces a textual loop nest for a :class:`~repro.mapping.mapping.Mapping`,
matching the representation used by the paper:

.. code-block:: text

    // DRAM level
    for q2 = [0 : 2):
      // Global Buffer level
      for p2 = [0 : 7):
        spatial_for k1 = [0 : 2):
          ...

Outer levels (DRAM) appear first; within a level the outermost loop appears
first (the temporal lists in :class:`LevelMapping` are innermost-first, so
they are reversed for printing).
"""

from __future__ import annotations

from collections import Counter

from repro.mapping.mapping import Mapping

_INDENT = "  "


def render_loop_nest(mapping: Mapping, level_names: list[str] | None = None) -> str:
    """Render ``mapping`` as an indented loop-nest listing.

    Parameters
    ----------
    mapping:
        The schedule to render.
    level_names:
        Optional memory level names (innermost first).  Defaults to
        ``Level 0 .. Level N-1``.
    """
    if level_names is None:
        level_names = [f"Level {i}" for i in range(mapping.num_levels)]
    if len(level_names) != mapping.num_levels:
        raise ValueError(
            f"expected {mapping.num_levels} level names, got {len(level_names)}"
        )

    # Tile-index suffixes: the outermost tile of a dimension gets the highest
    # index, matching the paper's q2 / q1 / q0 notation.
    per_dim_total = Counter()
    for level in mapping.levels:
        for loop in level.all_loops:
            if loop.bound > 1:
                per_dim_total[loop.dim] += 1
    next_index = {dim: count - 1 for dim, count in per_dim_total.items()}

    lines: list[str] = []
    depth = 0
    for level_index in reversed(range(mapping.num_levels)):
        level = mapping.levels[level_index]
        loops = [l for l in level.all_loops if l.bound > 1]
        lines.append(f"{_INDENT * depth}// {level_names[level_index]}")
        # Print outermost first: temporal loops reversed (they are stored
        # innermost-first), spatial loops last so they sit closest to the
        # next inner level, mirroring Listing 1.
        ordered = list(reversed(level.temporal)) + list(level.spatial)
        ordered = [l for l in ordered if l.bound > 1]
        for loop in ordered:
            suffix = next_index[loop.dim]
            next_index[loop.dim] -= 1
            keyword = "spatial_for" if loop.spatial else "for"
            lines.append(
                f"{_INDENT * depth}{keyword} {loop.dim.lower()}{suffix} = [0 : {loop.bound}):"
            )
            depth += 1
    return "\n".join(lines)


def nest_depth(mapping: Mapping) -> int:
    """Number of non-trivial loops in the rendered nest."""
    return sum(
        1
        for level in mapping.levels
        for loop in level.all_loops
        if loop.bound > 1
    )
