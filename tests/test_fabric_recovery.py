"""Process-level fabric tests: worker death, graceful signals, the gateway.

These tests spawn real ``repro worker`` / ``repro serve`` subprocesses:

* **SIGKILL recovery** — a worker is killed mid-solve; the lease expires, a
  second worker reclaims and re-executes, and the job completes **exactly
  once** with an envelope equal to a single-process ``run()`` (wall-clock
  floats aside).
* **SIGTERM drain** — a worker told to terminate mid-solve finishes its
  in-flight task, flushes the event log, and exits 0; an idle worker and a
  running gateway exit 0 immediately.
* **Cross-tenant fabric gateway** — two tenants submit the identical spec
  through ``backend="fabric"``; it executes once, the second tenant gets a
  store hit, and job records stay tenant-private.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import RunSpec, run, spec_fingerprint
from repro.api.auth import ApiKeyAuth
from repro.api.client import GatewayClient
from repro.api.gateway import SchedulingGateway
from repro.api.store import ResultStore
from repro.fabric.queue import TaskState, WorkQueue
from repro.fabric.worker import FabricWorker

SRC = Path(__file__).resolve().parent.parent / "src"

#: Cheap deterministic schedule run (seeded random search, tiny layer).
QUICK_SPEC = {
    "kind": "schedule",
    "workload": {"layers": ["3_4_8_16_1"]},
    "scheduler": {"name": "random", "options": {"num_valid": 2, "max_attempts": 500}},
}

#: A deliberately slow (~2-3s) but still deterministic solve, so signals can
#: reliably land *mid-execution*.
SLOW_SPEC = {
    "kind": "schedule",
    "workload": {"layers": ["3_7_64_64_1"]},
    "scheduler": {
        "name": "random",
        "options": {"num_valid": 60000, "max_attempts": 10_000_000},
    },
}


def normalize_times(obj):
    """Zero wall-clock float fields (solve times vary run to run)."""
    if isinstance(obj, dict):
        return {
            key: 0.0 if "time" in key and isinstance(value, float) else normalize_times(value)
            for key, value in obj.items()
        }
    if isinstance(obj, list):
        return [normalize_times(item) for item in obj]
    return obj


def start_worker(fabric_root, *extra):
    """Spawn one ``repro worker`` subprocess against ``fabric_root``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker", str(fabric_root), *extra],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def enqueue_job(tmp_path, spec_dict):
    """Persist one task the way the service does (record + run_queued log)."""
    store = ResultStore(tmp_path / "store")
    queue = WorkQueue(tmp_path / "fabric")
    spec = RunSpec.from_dict(spec_dict)
    fingerprint = spec_fingerprint(spec)
    job_id = store.allocate_job_id(fingerprint)
    store.record_job(
        {
            "job_id": job_id,
            "state": "queued",
            "kind": spec.kind,
            "priority": "interactive",
            "spec_fingerprint": fingerprint,
            "store_hit": False,
            "error": None,
            "num_events": 1,
            "spec": spec.to_dict(),
        }
    )
    from repro.io_utils import append_ndjson

    append_ndjson(
        store.events_path(job_id),
        {
            "schema_version": 1,
            "event": "run_queued",
            "job_id": job_id,
            "seq": 0,
            "kind": spec.kind,
            "spec_fingerprint": fingerprint,
        },
    )
    task = queue.enqueue(
        spec.to_dict(), fingerprint, job_id=job_id, store_root=str(store.root)
    )
    return store, queue, task, job_id, fingerprint


def wait_for_state(queue, task_id, state, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        task = queue.load_task(task_id)
        if task is not None and task["state"] == state:
            return task
        time.sleep(0.02)
    raise AssertionError(
        f"task {task_id} never reached {state!r}; "
        f"last seen: {queue.load_task(task_id)}"
    )


def terminate(process):
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)


class TestWorkerDeathRecovery:
    def test_sigkill_mid_job_is_reclaimed_and_completed_exactly_once(self, tmp_path):
        store, queue, task, job_id, fingerprint = enqueue_job(tmp_path, SLOW_SPEC)
        victim = start_worker(
            tmp_path / "fabric", "--lease-ttl", "1.0", "--poll-interval", "0.05"
        )
        try:
            wait_for_state(queue, task["task_id"], TaskState.RUNNING)
            time.sleep(0.3)  # well inside the ~2-3s solve
            victim.kill()  # SIGKILL: no drain, no release, lease left behind
            victim.wait(timeout=10)
            assert queue.load_task(task["task_id"])["state"] == TaskState.RUNNING

            rescuer = start_worker(
                tmp_path / "fabric",
                "--lease-ttl", "1.0", "--poll-interval", "0.05",
                "--max-tasks", "1", "--worker-id", "rescuer",
            )
            try:
                assert rescuer.wait(timeout=120) == 0
            finally:
                terminate(rescuer)
        finally:
            terminate(victim)

        # Re-dispatched after the lease expired, completed exactly once.
        final = queue.load_task(task["task_id"])
        assert final["state"] == TaskState.DONE
        assert final["attempts"] == 2
        journal = [line["event"] for line in queue.read_journal()]
        assert journal.count("reclaimed") == 1
        assert journal.count("completed") == 1

        record = store.load_job(job_id)
        assert record["state"] == "done"
        assert record["worker"] == "rescuer"
        events = [
            json.loads(line)["event"]
            for line in store.events_path(job_id).read_text().splitlines()
        ]
        assert events.count("run_finished") == 1  # exactly-once completion
        assert events.count("run_started") == 2  # the killed attempt shows

        # The stored envelope equals a local single-process run() of the
        # same spec, wall-clock floats aside.
        stored = store.load(fingerprint)
        local = run(RunSpec.from_dict(SLOW_SPEC))
        assert normalize_times(stored.to_dict()) == normalize_times(local.to_dict())


class TestGracefulSignals:
    def test_sigterm_drains_the_inflight_task_and_exits_zero(self, tmp_path):
        store, queue, task, job_id, _ = enqueue_job(tmp_path, SLOW_SPEC)
        worker = start_worker(tmp_path / "fabric", "--poll-interval", "0.05")
        try:
            wait_for_state(queue, task["task_id"], TaskState.RUNNING)
            worker.send_signal(signal.SIGTERM)
            assert worker.wait(timeout=120) == 0  # finished the task first
        finally:
            terminate(worker)
        assert queue.load_task(task["task_id"])["state"] == TaskState.DONE
        events = [
            json.loads(line)["event"]
            for line in store.events_path(job_id).read_text().splitlines()
        ]
        assert events[-1] == "run_finished"  # log flushed before exit

    def test_sigterm_on_an_idle_worker_exits_zero(self, tmp_path):
        worker = start_worker(tmp_path / "fabric", "--poll-interval", "0.05")
        try:
            time.sleep(1.0)  # let it reach the claim loop
            worker.send_signal(signal.SIGTERM)
            assert worker.wait(timeout=30) == 0
        finally:
            terminate(worker)

    def test_sigterm_on_the_gateway_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--store", str(tmp_path / "store"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = server.stdout.readline()  # printed once the socket is bound
            assert "repro gateway on http" in banner
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=30) == 0
        finally:
            terminate(server)


class TestFabricGateway:
    def test_cross_tenant_submissions_execute_once(self, tmp_path):
        auth = ApiKeyAuth({"k-acme": "acme", "k-bobco": "bobco"})
        gateway = SchedulingGateway(
            tmp_path / "gw-store",
            auth=auth,
            backend="fabric",
            fabric_root=tmp_path / "fabric",
        )
        gateway.start()
        worker = FabricWorker(tmp_path / "fabric", worker_id="w1", poll_interval=0.02)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            acme = GatewayClient(gateway.url, tenant="acme", api_key="k-acme")
            bobco = GatewayClient(gateway.url, tenant="bobco", api_key="k-bobco")

            first = acme.wait(acme.submit(QUICK_SPEC)["job_id"])
            second = bobco.wait(bobco.submit(QUICK_SPEC)["job_id"])
            assert first["state"] == "done" and first["store_hit"] is False
            assert second["state"] == "done"
            # The identical spec executed once: bobco's job is a store hit
            # served from the shared results tier.
            assert second["store_hit"] is True
            assert json.loads(acme.result_text(first["job_id"])) == json.loads(
                bobco.result_text(second["job_id"])
            )

            # One content-addressed entry, in the shared tier.
            fingerprint = spec_fingerprint(RunSpec.from_dict(QUICK_SPEC))
            shared = ResultStore(tmp_path / "gw-store" / "shared")
            assert shared.result_path(fingerprint).exists()

            # Job records stay tenant-private: ids are namespaced and
            # neither tenant can list or read the other's jobs.
            assert first["job_id"].startswith("acme-")
            assert second["job_id"].startswith("bobco-")
            acme_jobs = [record["job_id"] for record in acme.jobs()]
            bobco_jobs = [record["job_id"] for record in bobco.jobs()]
            assert first["job_id"] in acme_jobs
            assert second["job_id"] not in acme_jobs
            assert first["job_id"] not in bobco_jobs

            # Both tasks ran to completion but only acme's executed a
            # scheduler; bobco's completed as a shared-store hit.
            tasks = {task["tenant"]: task for task in WorkQueue(tmp_path / "fabric").tasks()}
            assert tasks["acme"]["state"] == TaskState.DONE
            assert tasks["acme"]["store_hit"] is False
            assert tasks["bobco"]["state"] == TaskState.DONE
            assert tasks["bobco"]["store_hit"] is True
        finally:
            worker.stop()
            thread.join(timeout=10)
            gateway.close()

    def test_event_stream_of_a_fabric_job_over_http(self, tmp_path):
        gateway = SchedulingGateway(
            tmp_path / "gw-store",
            backend="fabric",
            fabric_root=tmp_path / "fabric",
        )
        gateway.start()
        worker = FabricWorker(tmp_path / "fabric", worker_id="w1", poll_interval=0.02)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            client = GatewayClient(gateway.url, tenant="acme")
            record = client.submit(QUICK_SPEC)
            events = list(client.events(record["job_id"]))
            kinds = [event["event"] for event in events]
            assert kinds[0] == "run_queued"
            assert "run_started" in kinds
            assert kinds[-1] == "run_finished"
            assert [event["seq"] for event in events] == list(range(len(events)))
        finally:
            worker.stop()
            thread.join(timeout=10)
            gateway.close()
