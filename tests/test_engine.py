"""Tests for the unified scheduling engine: protocol conformance, parallel
equivalence, the mapping cache and the ``stats=None`` regression."""

import json

import pytest

from repro.arch import simba_like
from repro.baselines import RandomScheduler, TimeloopHybridScheduler, TVMLikeTuner
from repro.core import CoSAScheduler
from repro.core.gpu import CoSAGPUScheduler
from repro.core.scheduler import ScheduleResult
from repro.engine import MappingCache, SchedulingEngine, Scheduler, cache_key
from repro.solver.solution import Solution, SolveStatus
from repro.workloads import Layer, layer_from_name
from repro.workloads.networks import resnet50_layers

ARCH = simba_like()

TINY = Layer(r=3, p=4, q=4, s=3, c=8, k=16, name="tiny")


class TestSchedulerProtocol:
    def test_all_four_schedulers_conform(self):
        schedulers = [
            CoSAScheduler(ARCH),
            RandomScheduler(ARCH),
            TimeloopHybridScheduler(ARCH),
            TVMLikeTuner(ARCH),
        ]
        for scheduler in schedulers:
            assert isinstance(scheduler, Scheduler), scheduler
        assert len({s.name for s in schedulers}) == 4

    def test_gpu_scheduler_conforms(self):
        assert isinstance(CoSAGPUScheduler(), Scheduler)

    def test_outcome_shape(self):
        outcome = RandomScheduler(ARCH, num_valid=2).schedule_outcome(TINY)
        assert outcome.scheduler == "random"
        assert outcome.layer == TINY
        assert outcome.num_sampled >= outcome.num_evaluated >= 2
        assert outcome.wall_time_seconds > 0
        assert not outcome.from_cache
        assert outcome.detail is not None
        data = outcome.to_dict()
        assert data["succeeded"] is True
        json.dumps(data)  # JSON-compatible

    def test_cosa_outcome_is_one_shot(self):
        outcome = CoSAScheduler(ARCH).schedule_outcome(TINY)
        assert outcome.scheduler == "cosa"
        assert outcome.num_sampled == 1
        assert outcome.num_evaluated == 1
        assert outcome.succeeded

    def test_config_fingerprint_reflects_config(self):
        base = RandomScheduler(ARCH, seed=0)
        assert base.config_fingerprint() == RandomScheduler(ARCH, seed=0).config_fingerprint()
        assert base.config_fingerprint() != RandomScheduler(ARCH, seed=1).config_fingerprint()
        assert base.config_fingerprint() != RandomScheduler(ARCH, num_valid=9).config_fingerprint()

    def test_engine_rejects_non_schedulers(self):
        with pytest.raises(TypeError):
            SchedulingEngine(object())


class TestEngineNetwork:
    def test_dedup_solves_unique_layers_once(self):
        layers = [
            Layer(c=8, k=8, name="a"),
            Layer(p=4, k=16, name="b"),
            Layer(c=8, k=8, name="a-again"),  # equal to "a" (name ignored)
        ]
        engine = SchedulingEngine(RandomScheduler(ARCH, num_valid=2))
        network = engine.schedule_network(layers)
        assert network.stats.num_layers == 3
        assert network.stats.unique_layers == 2
        assert network.stats.dedup_reuses == 1
        assert network.stats.solves == 2
        # The duplicate keeps its own layer identity but shares the mapping.
        assert network.outcomes[2].layer.name == "a-again"
        assert network.outcomes[2].mapping.summary() == network.outcomes[0].mapping.summary()

    def test_metrics_populated(self):
        engine = SchedulingEngine(RandomScheduler(ARCH, num_valid=2))
        outcome = engine.schedule_layer(TINY)
        assert set(outcome.metrics) == {"latency", "energy", "edp"}
        assert outcome.metrics["edp"] == pytest.approx(
            outcome.metrics["latency"] * outcome.metrics["energy"]
        )

    def test_thread_and_process_match_serial_for_search(self):
        layers = [Layer(c=8, k=8), Layer(p=4, k=16), Layer(c=16, k=4), Layer(p=8, c=4)]
        engine = SchedulingEngine(RandomScheduler(ARCH, num_valid=2), evaluate_metrics=False)
        serial = engine.schedule_network(layers, jobs=1)
        threaded = engine.schedule_network(layers, jobs=4, executor="thread")
        forked = engine.schedule_network(layers, jobs=2, executor="process")
        reference = [o.mapping.summary() for o in serial.outcomes]
        assert [o.mapping.summary() for o in threaded.outcomes] == reference
        assert [o.mapping.summary() for o in forked.outcomes] == reference

    def test_invalid_arguments_rejected(self):
        engine = SchedulingEngine(RandomScheduler(ARCH))
        with pytest.raises(ValueError):
            engine.schedule_network([TINY], jobs=0)
        with pytest.raises(ValueError):
            engine.schedule_network([TINY], jobs=2, executor="gpu")

    def test_cosa_parallel_matches_serial_on_resnet_slice(self):
        """Acceptance: jobs=N returns mappings identical to the serial path,
        and a second cache-enabled run performs zero MIP solves."""
        layers = resnet50_layers()[:4]
        cache = MappingCache()
        engine = SchedulingEngine(CoSAScheduler(ARCH), cache=cache, evaluate_metrics=False)

        first = engine.schedule_network(layers, jobs=1)
        assert first.stats.solves == 4
        assert first.stats.cache_misses == 4
        assert first.stats.cache_hits == 0
        assert all(o.succeeded for o in first.outcomes)

        # Second run: every layer is served from the cache, zero MIP solves.
        second = engine.schedule_network(layers, jobs=1)
        assert second.stats.solves == 0
        assert second.stats.cache_hits == 4
        assert second.stats.cache_misses == 0
        assert all(o.from_cache for o in second.outcomes)
        reference = [o.mapping.summary() for o in first.outcomes]
        assert [o.mapping.summary() for o in second.outcomes] == reference

        # Parallel run without a cache: same mappings as the serial path.
        parallel_engine = SchedulingEngine(CoSAScheduler(ARCH), evaluate_metrics=False)
        parallel = parallel_engine.schedule_network(layers, jobs=4)
        assert parallel.stats.solves == 4
        assert [o.mapping.summary() for o in parallel.outcomes] == reference

    def test_suite_shares_cache_across_networks(self):
        # ResNet-50 and ResNeXt-50 share their first layer (7_112_3_64_2);
        # with a shared cache the suite must solve it only once.
        suite = {
            "resnet50": resnet50_layers()[:1],
            "resnext50": [layer_from_name("7_112_3_64_2")],
        }
        engine = SchedulingEngine(RandomScheduler(ARCH, num_valid=2), cache=MappingCache())
        result = engine.schedule_suite(suite)
        assert result.networks["resnet50"].stats.solves == 1
        assert result.networks["resnext50"].stats.cache_hits == 1
        assert result.networks["resnext50"].stats.solves == 0
        assert result.stats.num_layers == 2
        json.dumps(result.to_dict())


class TestMappingCache:
    def test_disk_round_trip_and_hit(self, tmp_path):
        path = tmp_path / "cache.json"
        scheduler = RandomScheduler(ARCH, num_valid=2)
        engine = SchedulingEngine(scheduler, cache=MappingCache(path=path))
        solved = engine.schedule_layer(TINY)
        assert not solved.from_cache
        engine.cache.save()
        assert path.exists()

        # A fresh process-equivalent: new cache object loaded from disk.
        reloaded = MappingCache(path=path)
        assert len(reloaded) == 1
        engine2 = SchedulingEngine(RandomScheduler(ARCH, num_valid=2), cache=reloaded)
        hit = engine2.schedule_layer(TINY)
        assert hit.from_cache
        assert reloaded.stats.hits == 1
        assert hit.mapping.summary() == solved.mapping.summary()
        # The original solve time survives the round trip.
        assert hit.solve_time_seconds == pytest.approx(solved.solve_time_seconds)

    def test_key_separates_schedulers_architectures_and_configs(self):
        random_a = RandomScheduler(ARCH, seed=0)
        keys = {
            cache_key(TINY, ARCH, random_a),
            cache_key(TINY, ARCH, RandomScheduler(ARCH, seed=1)),
            cache_key(TINY, ARCH, CoSAScheduler(ARCH)),
            cache_key(Layer(c=8, k=16), ARCH, random_a),
            cache_key(TINY, simba_like(), random_a),  # equal arch -> equal key
        }
        assert len(keys) == 4
        # Batch size must enter the key even though canonical names ignore it.
        batched = Layer(r=3, p=4, q=4, s=3, c=8, k=16, n=2)
        assert cache_key(batched, ARCH, random_a) != cache_key(TINY, ARCH, random_a)

    def test_lru_eviction(self):
        cache = MappingCache(max_entries=2)
        scheduler = RandomScheduler(ARCH, num_valid=1)
        engine = SchedulingEngine(scheduler, cache=cache, evaluate_metrics=False)
        layers = [Layer(c=4, k=4), Layer(c=8, k=4), Layer(c=16, k=4)]
        for layer in layers:
            engine.schedule_layer(layer)
        assert len(cache) == 2
        # The first layer was evicted; the latest two are still hits.
        assert cache.get(cache_key(layers[0], ARCH, scheduler)) is None
        assert cache.get(cache_key(layers[2], ARCH, scheduler)) is not None

    def test_failed_outcomes_are_not_cached(self):
        cache = MappingCache()
        from repro.engine.outcome import ScheduleOutcome

        cache.put("key", ScheduleOutcome(layer=TINY, scheduler="x", mapping=None))
        assert len(cache) == 0

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            MappingCache(path=path)


class _FailingBackend:
    """MIP backend that never returns a usable solution."""

    time_limit_seconds = None
    mip_rel_gap = 0.0

    def solve(self, model) -> Solution:
        return Solution(status=SolveStatus.ERROR)


class TestStatsNoneRegression:
    def test_schedule_result_allows_missing_stats(self):
        # Regression for the type lie: ScheduleResult.stats is optional.
        result = ScheduleResult(
            layer=TINY,
            mapping=None,
            solution=Solution(status=SolveStatus.ERROR),
            objective=None,
            solve_time_seconds=0.0,
            stats=None,
        )
        assert not result.succeeded
        assert result.stats is None

    def test_failing_solver_produces_guarded_result(self):
        scheduler = CoSAScheduler(ARCH, backend=_FailingBackend())
        result = scheduler.schedule(TINY)
        assert not result.succeeded
        assert result.mapping is None
        assert result.objective is None

        # The unified outcome and the engine handle the failure gracefully.
        engine = SchedulingEngine(scheduler, cache=MappingCache())
        outcome = engine.schedule_layer(TINY)
        assert not outcome.succeeded
        assert outcome.metrics == {}
        assert len(engine.cache) == 0  # failures are never cached

    def test_cli_reports_failure_through_summary_path(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.api import schedulers

        monkeypatch.setitem(
            schedulers._factories,
            "cosa",
            lambda accelerator, **kw: CoSAScheduler(accelerator, backend=_FailingBackend()),
        )
        code = cli.main(["schedule", "3_13_256_256_1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "no valid schedule found" in captured.err
        # The single summary path prints nothing on stdout for failed runs.
        assert captured.out == ""


class TestEngineCLI:
    def test_compare_json_output(self, capsys, tmp_path):
        cache_file = tmp_path / "cache.json"
        args = ["compare", "alexnet", "--layers", "1", "--jobs", "2", "--json",
                "--cache", str(cache_file)]
        assert __import__("repro.cli", fromlist=["main"]).main(args) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema_version"] == 1
        assert envelope["kind"] == "compare"
        assert envelope["spec"]["workload"]["network"] == "alexnet"
        data = envelope["data"]
        assert data["label"] == "alexnet"
        assert len(data["comparisons"]) == 1
        assert {"random", "timeloop-hybrid", "cosa"} <= set(data["engine_stats"])
        assert cache_file.exists()

        # Second run against the persisted cache: zero fresh solves.
        assert __import__("repro.cli", fromlist=["main"]).main(args) == 0
        data = json.loads(capsys.readouterr().out)["data"]
        for stats in data["engine_stats"].values():
            assert stats["solves"] == 0
            assert stats["cache_hits"] == 1

    def test_suite_json_output(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["suite", "--scheduler", "random", "--layers", "1", "--json"])
        envelope = json.loads(capsys.readouterr().out)
        assert code == 0
        # An empty-workload suite covers every registered workload, which now
        # includes the transformer-block presets — non-conv problems stamp v2.
        assert envelope["schema_version"] == 2
        data = envelope["data"]
        assert {
            "alexnet",
            "resnet50",
            "resnext50",
            "deepbench",
            "bert-base-block",
            "gpt2-small-block",
        } == set(data["networks"])
        assert data["stats"]["num_layers"] == 6

    def test_schedule_json_output(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["schedule", "3_13_256_256_1", "--scheduler", "random", "--json"])
        envelope = json.loads(capsys.readouterr().out)
        assert code == 0
        assert envelope["schema_version"] == 1
        assert envelope["spec"]["scheduler"]["name"] == "random"
        outcome = envelope["data"]["outcomes"][0]
        assert envelope["data"]["succeeded"] is True
        assert outcome["succeeded"] is True
        assert "loop_nest" in outcome
        assert outcome["metrics"]["latency"] > 0


class TestLayerObserver:
    """schedule_network/schedule_suite report one LayerReport per input
    layer, in input order, regardless of jobs — the substrate of the
    service's deterministic layer_scheduled events."""

    def _reports(self, engine, layers, **kwargs):
        reports = []
        engine.schedule_network(layers, observer=reports.append, **kwargs)
        return reports

    def test_reports_in_input_order_with_sources(self, tmp_path):
        scheduler = RandomScheduler(ARCH, num_valid=2, seed=0)
        cache = MappingCache(path=tmp_path / "cache.json")
        engine = SchedulingEngine(scheduler, cache=cache)
        layers = [Layer(r=3, p=4, c=8, k=16, name="a"),
                  Layer(r=1, p=2, c=4, k=4, name="b"),
                  Layer(r=3, p=4, c=8, k=16, name="a2")]  # dup of "a"

        cold = self._reports(engine, layers, label="net")
        assert [r.index for r in cold] == [0, 1, 2]
        assert [r.source for r in cold] == ["solve", "solve", "dedup"]
        assert all(r.network == "net" for r in cold)
        assert [r.layer.name for r in cold] == ["a", "b", "a2"]
        assert all(r.outcome.succeeded for r in cold)

        warm = self._reports(engine, layers, label="net")
        assert [r.source for r in warm] == ["cache", "cache", "dedup"]

    def test_reports_identical_under_jobs(self):
        scheduler = RandomScheduler(ARCH, num_valid=2, seed=0)
        engine = SchedulingEngine(scheduler)
        layers = [Layer(r=3, p=4, c=8, k=16), Layer(r=1, p=2, c=4, k=4)]

        from repro.mapping.serialize import mapping_to_dict

        serial = self._reports(engine, layers, jobs=1)
        threaded = self._reports(engine, layers, jobs=2)
        key = lambda r: (r.index, r.source, mapping_to_dict(r.outcome.mapping))
        assert [key(r) for r in serial] == [key(r) for r in threaded]

    def test_reports_stream_between_solves(self):
        # Progress is live: with jobs=1 the observer fires for layer N before
        # layer N+1's solve starts, not in a batch after the whole network.
        scheduler = RandomScheduler(ARCH, num_valid=1, seed=0)
        engine = SchedulingEngine(scheduler)
        trace = []
        original = scheduler.schedule_outcome

        def traced(layer):
            trace.append(("solve", layer.name))
            return original(layer)

        scheduler.schedule_outcome = traced
        layers = [Layer(r=1, p=2, c=4, k=4, name="a"), Layer(p=4, k=8, name="b")]
        engine.schedule_network(
            layers, observer=lambda r: trace.append(("report", r.layer.name))
        )
        assert trace == [
            ("solve", "a"), ("report", "a"), ("solve", "b"), ("report", "b"),
        ]

    def test_suite_observer_covers_every_network(self):
        scheduler = RandomScheduler(ARCH, num_valid=1, seed=0)
        engine = SchedulingEngine(scheduler)
        suite = {"one": [Layer(r=1, p=2, c=4, k=4)], "two": [Layer(p=4, k=8)]}
        reports = []
        engine.schedule_suite(suite, observer=reports.append)
        assert [(r.network, r.index) for r in reports] == [("one", 0), ("two", 0)]
