"""Objective functions of the CoSA MIP (Sec. III-D of the paper).

Three composable objectives, all linear in the decision variables because
every quantity is expressed as a sum of ``log(prime factor)`` terms:

* **utilization** (Eq. 5) — sum of the log tile sizes of every tensor at
  every on-chip buffer; maximising it maximises the geometric mean of the
  buffer utilizations,
* **compute** (Eq. 6) — sum of the logs of the temporally-mapped factors,
  i.e. the log of the per-lane compute cycles,
* **traffic** (Eq. 7-11) — per tensor, the log of the transfer size below
  the NoC plus the relevant spatial fan-out at the NoC plus the
  traffic-iteration term driven by the permutation ranks.

The overall objective (Eq. 12) is ``-wU * Util + wC * Comp + wT * Traf``.

The same three quantities can also be evaluated directly on a finished
:class:`~repro.mapping.mapping.Mapping` via
:func:`mapping_objective_breakdown`, which is what the Fig. 8 experiment
(objective breakdown of Random / Timeloop-Hybrid / CoSA schedules) uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.core.constants import is_relevant
from repro.core.variables import CoSAVariables
from repro.mapping.mapping import Mapping
from repro.solver.expr import LinearExpr, lin_sum
from repro.workloads.layer import TensorKind


@dataclass(frozen=True)
class ObjectiveWeights:
    """User-selected weights of the composite objective (Eq. 12).

    The defaults were calibrated against the Simba-like baseline architecture
    (the paper tunes its weights with per-architecture micro-benchmarks in
    the same spirit): the compute term dominates so the solver exhausts
    spatial parallelism first, traffic breaks ties between equally-parallel
    schedules, and utilization keeps a small pull towards large on-chip
    tiles without crowding out spatial factors from the capacity budget.
    """

    utilization: float = 0.2
    compute: float = 4.0
    traffic: float = 1.0

    def scaled(self, utilization: float | None = None, compute: float | None = None, traffic: float | None = None) -> "ObjectiveWeights":
        """Copy with selected weights replaced."""
        return ObjectiveWeights(
            utilization=self.utilization if utilization is None else utilization,
            compute=self.compute if compute is None else compute,
            traffic=self.traffic if traffic is None else traffic,
        )


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """Values of the three objective terms (log space) plus the weighted total."""

    utilization: float
    compute: float
    traffic: float
    weights: ObjectiveWeights

    @property
    def total(self) -> float:
        """``-wU * Util + wC * Comp + wT * Traf`` (lower is better)."""
        return (
            -self.weights.utilization * self.utilization
            + self.weights.compute * self.compute
            + self.weights.traffic * self.traffic
        )


# --------------------------------------------------------------------------- MIP expressions
def utilization_expression(variables: CoSAVariables) -> LinearExpr:
    """Eq. 5: sum of per-buffer, per-tensor log tile sizes (to be maximised)."""
    accelerator = variables.accelerator
    terms = []
    for level_index, level in enumerate(accelerator.hierarchy):
        if level.is_unbounded:
            continue
        for tensor in TensorKind:
            if not level.holds(tensor):
                continue
            for factor in variables.factors:
                if not is_relevant(factor.dim, tensor, variables.problem):
                    continue
                for below in range(level_index):
                    terms.append(factor.log_value * variables.temporal_at(factor, below))
                    spatial_below = variables.spatial_at(factor, below)
                    if spatial_below is not None:
                        terms.append(factor.log_value * spatial_below)
                spatial_here = variables.spatial_at(factor, level_index)
                if spatial_here is not None:
                    terms.append(factor.log_value * spatial_here)
    return lin_sum(terms)


def compute_expression(variables: CoSAVariables) -> LinearExpr:
    """Eq. 6: log of the product of every temporally-mapped factor."""
    terms = []
    for factor in variables.factors:
        for level in variables.temporal_levels:
            terms.append(factor.log_value * variables.temporal_at(factor, level))
    return lin_sum(terms)


def traffic_expression(variables: CoSAVariables) -> LinearExpr:
    """Eq. 11: sum over tensors of transfer size + spatial fan-out + iteration terms."""
    noc_level = variables.noc_level
    terms = []
    for tensor in TensorKind:
        # D_v: data size per transfer — relevant factors mapped below the NoC.
        for factor in variables.factors:
            if not is_relevant(factor.dim, tensor, variables.problem):
                continue
            for below in range(noc_level):
                terms.append(factor.log_value * variables.temporal_at(factor, below))
                spatial_below = variables.spatial_at(factor, below)
                if spatial_below is not None:
                    terms.append(factor.log_value * spatial_below)
            # L_v: relevant spatial factors at the NoC level (unicast fan-out).
            spatial_noc = variables.spatial_at(factor, noc_level)
            if spatial_noc is not None:
                terms.append(factor.log_value * spatial_noc)
        # T_v: traffic iterations of the outer temporal loops (Eq. 10),
        # linearised per dimension through the G / traffic-term variables.
        for dim in variables.active_dims:
            terms.append(1.0 * variables.traffic_term[(tensor, dim)])
    return lin_sum(terms)


def overall_objective(
    variables: CoSAVariables, weights: ObjectiveWeights = ObjectiveWeights()
) -> LinearExpr:
    """Eq. 12: the weighted combination handed to the solver (minimised)."""
    return (
        (-weights.utilization) * utilization_expression(variables)
        + weights.compute * compute_expression(variables)
        + weights.traffic * traffic_expression(variables)
    )


# ----------------------------------------------------------------- mapping-side evaluation
def _log_factor_product(mapping: Mapping, tensor: TensorKind, level: int, include_spatial_at_level: bool) -> float:
    """Log of the relevant factor product below ``level`` (mirrors the MIP tile term)."""
    total = 0.0
    problem = mapping.layer.problem
    for dim in problem.dims:
        if not is_relevant(dim, tensor, problem):
            continue
        below = mapping.dim_product(dim, max_level=level - 1) if level > 0 else 1
        at_level_spatial = (
            mapping.levels[level].factor(dim, include_temporal=False) if include_spatial_at_level else 1
        )
        total += math.log(below * at_level_spatial)
    return total


def mapping_utilization(mapping: Mapping, accelerator: Accelerator) -> float:
    """Eq. 5 evaluated on a finished mapping."""
    total = 0.0
    for level_index, level in enumerate(accelerator.hierarchy):
        if level.is_unbounded:
            continue
        for tensor in TensorKind:
            if level.holds(tensor):
                total += _log_factor_product(mapping, tensor, level_index, include_spatial_at_level=True)
    return total


def mapping_compute(mapping: Mapping) -> float:
    """Eq. 6 evaluated on a finished mapping (log of per-lane temporal iterations)."""
    return math.log(mapping.total_temporal_product())


def mapping_traffic(mapping: Mapping, accelerator: Accelerator) -> float:
    """Eq. 11 evaluated on a finished mapping."""
    noc_level = accelerator.pe_level_index()
    problem = mapping.layer.problem
    total = 0.0
    for tensor in TensorKind:
        # D_v: transfer size below the NoC boundary.
        total += _log_factor_product(mapping, tensor, noc_level, include_spatial_at_level=False)
        # L_v: relevant spatial fan-out at the NoC level.
        for loop in mapping.levels[noc_level].spatial:
            if loop.relevant_to(tensor, problem):
                total += math.log(loop.bound)
        # T_v: outer temporal loops at-or-outside the innermost relevant loop.
        relevant_seen = False
        for _, loop in mapping.loops_above(noc_level):
            if not relevant_seen and loop.relevant_to(tensor, problem):
                relevant_seen = True
            if relevant_seen:
                total += math.log(loop.bound)
    return total


def mapping_objective_breakdown(
    mapping: Mapping,
    accelerator: Accelerator,
    weights: ObjectiveWeights = ObjectiveWeights(),
) -> ObjectiveBreakdown:
    """Evaluate the three CoSA objective terms on any mapping (Fig. 8)."""
    return ObjectiveBreakdown(
        utilization=mapping_utilization(mapping, accelerator),
        compute=mapping_compute(mapping),
        traffic=mapping_traffic(mapping, accelerator),
        weights=weights,
    )
