"""Fig. 9: CoSA generalisation across hardware configurations."""

from bench_utils import layers_per_network, save_report

from repro.experiments.figures import fig9_architecture_sweep
from repro.api import geometric_mean
from repro.experiments.reporting import format_speedup_rows


def test_fig9_architecture_sweep(benchmark):
    results = benchmark.pedantic(
        fig9_architecture_sweep,
        kwargs={"layers_per_network": layers_per_network(3)},
        rounds=1,
        iterations=1,
    )

    report_parts = []
    for label, summaries in results.items():
        overall_cosa = geometric_mean(s.cosa_geomean for s in summaries)
        overall_hybrid = geometric_mean(s.hybrid_geomean for s in summaries)
        part = format_speedup_rows(summaries, title=f"Fig. 9 - {label}")
        part += f"\nOVERALL geomean: Random=1.00  Hybrid={overall_hybrid:.2f}  CoSA={overall_cosa:.2f}"
        report_parts.append(part)
    save_report("fig9_architectures", "\n\n".join(report_parts))

    assert set(results) == {"8x8 PEs", "Larger Buffers"}
    for summaries in results.values():
        overall_cosa = geometric_mean(s.cosa_geomean for s in summaries)
        # Paper shape: CoSA keeps beating Random on both scaled architectures
        # (4.4x and 5.7x in the paper).
        assert overall_cosa > 1.0
