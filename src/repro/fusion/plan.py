"""Fusion plans: how a whole network partitions into schedulable groups.

A :class:`FusionPlan` is an ordered partition of a network's operator list
into :class:`~repro.fusion.group.FusionGroup` s — multi-operator groups for
fused chains, singletons for everything else.  The engine schedules a plan
group by group; ``plan.layers`` flattens back to the exact input operator
order, so a plan never reorders the network.

:func:`auto_group` is the greedy legality-driven auto-grouper: it walks the
operator list in order and extends the current chain while the previous
operator's output legally feeds the next operator's input
(:func:`~repro.fusion.group.infer_edge`).  Two guards keep it honest:

* **Equal-operator guard** — an operator never feeds a value-equal operator
  (identical Q/K/V projections are parallel branches off one residual
  stream, not a chain, even though a shape bijection exists).
* **Chain-shape assumption** — the grouper only considers *consecutive*
  operators, so it recovers linear producer-consumer chains (the common
  transformer/CNN block shape); branching DAGs need explicit groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fusion.group import FusionEdge, FusionGroup, FusionError, infer_edge

#: Default cap on operators per auto-grouped chain.
DEFAULT_MAX_GROUP_SIZE = 8


@dataclass(frozen=True)
class FusionPlan:
    """An ordered partition of a network into fusion groups."""

    groups: tuple[FusionGroup, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(self.groups))
        if not self.groups:
            raise FusionError("a fusion plan needs at least one group")

    @property
    def layers(self) -> list:
        """The network's operators in input order (groups concatenated)."""
        return [layer for group in self.groups for layer in group.layers]

    @property
    def num_fused_groups(self) -> int:
        """Groups with at least one fused edge."""
        return sum(1 for group in self.groups if not group.is_singleton)

    @property
    def num_fused_edges(self) -> int:
        return sum(len(group.edges) for group in self.groups)

    def fingerprint(self) -> str:
        """Stable content digest of the whole plan."""
        from repro.digest import stable_digest

        return stable_digest({"groups": [group.fingerprint() for group in self.groups]})

    def to_dict(self) -> dict:
        return {
            "groups": [group.to_dict() for group in self.groups],
            "num_fused_groups": self.num_fused_groups,
            "num_fused_edges": self.num_fused_edges,
        }

    @classmethod
    def singletons(cls, layers, prefix: str = "op") -> "FusionPlan":
        """The trivial plan: every operator is its own group (fusion off)."""
        return cls(
            groups=tuple(
                FusionGroup(name=f"{prefix}{i}", layers=(layer,))
                for i, layer in enumerate(layers)
            )
        )


def _group_name(layers, start: int) -> str:
    first = layers[0]
    label = first.name or first.canonical_name
    if len(layers) == 1:
        return label
    last = layers[-1]
    return f"{label}..{last.name or last.canonical_name}"


def auto_group(layers, max_group_size: int = DEFAULT_MAX_GROUP_SIZE) -> FusionPlan:
    """Greedy legality-driven chain fusion over consecutive operators."""
    layers = list(layers)
    if not layers:
        raise FusionError("auto_group needs at least one operator")
    if max_group_size < 1:
        raise ValueError(f"max_group_size must be >= 1, got {max_group_size}")
    groups: list[FusionGroup] = []
    chain: list = [layers[0]]
    chain_edges: list[FusionEdge] = []
    chain_start = 0

    def close() -> None:
        groups.append(
            FusionGroup(
                name=_group_name(chain, chain_start),
                layers=tuple(chain),
                edges=tuple(chain_edges),
            )
        )

    for index in range(1, len(layers)):
        previous, nxt = layers[index - 1], layers[index]
        edge = None
        if len(chain) < max_group_size and previous != nxt:
            edge = infer_edge(
                previous, nxt, producer_index=len(chain) - 1, consumer_index=len(chain)
            )
        if edge is None:
            close()
            chain, chain_edges, chain_start = [nxt], [], index
        else:
            chain.append(nxt)
            chain_edges.append(edge)
    close()
    return FusionPlan(groups=tuple(groups))


def plan_for(layers, fusion) -> FusionPlan:
    """Normalize a fusion request against a resolved operator list.

    ``fusion`` may be ``"auto"`` (run the auto-grouper), a ready
    :class:`FusionPlan` (validated to cover exactly ``layers``), or a single
    :class:`FusionGroup` (wrapped into a one-group plan).
    """
    layers = list(layers)
    if fusion == "auto":
        return auto_group(layers)
    if isinstance(fusion, FusionGroup):
        fusion = FusionPlan(groups=(fusion,))
    if not isinstance(fusion, FusionPlan):
        raise TypeError(
            f"fusion must be 'auto', a FusionPlan or a FusionGroup, got {fusion!r}"
        )
    plan_layers = fusion.layers
    if len(plan_layers) != len(layers) or any(
        a != b for a, b in zip(plan_layers, layers)
    ):
        raise FusionError(
            f"fusion plan covers {len(plan_layers)} operators that do not match "
            f"the network's {len(layers)} operators (same shapes, same order, "
            "required)"
        )
    return fusion
