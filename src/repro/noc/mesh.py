"""2-D mesh network with X-Y routing, multicast trees and link contention.

The mesh has one router per PE plus an injection node for the global buffer
attached to the router at position (0, 0) (matching the Simba-style design
where the global buffer sits at the array edge).  Every directed link keeps a
"free at" timestamp; a packet reserves each link along its route in order,
so hot links near the injection point naturally serialise traffic — this is
the congestion effect the analytical model cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.spatial import NoCSpec, PEArraySpec
from repro.noc.packet import Packet, TrafficDirection

#: Identifier of the global-buffer injection node.
GLOBAL_BUFFER_NODE = -1


@dataclass
class LinkState:
    """Occupancy bookkeeping of one directed link."""

    free_at: float = 0.0
    busy_cycles: float = 0.0


class MeshNetwork:
    """An ``rows x cols`` wormhole mesh with per-link occupancy tracking."""

    def __init__(self, pe_array: PEArraySpec, noc: NoCSpec):
        self.pe_array = pe_array
        self.noc = noc
        self.rows = pe_array.rows
        self.cols = pe_array.cols
        self._links: dict[tuple[int, int], LinkState] = {}

    # ----------------------------------------------------------------- layout
    def coordinates(self, pe_id: int) -> tuple[int, int]:
        """(row, col) of a PE id (row-major numbering)."""
        if pe_id == GLOBAL_BUFFER_NODE:
            return (0, 0)
        if not 0 <= pe_id < self.rows * self.cols:
            raise ValueError(f"PE id {pe_id} out of range for a {self.rows}x{self.cols} mesh")
        return divmod(pe_id, self.cols)

    def node_id(self, row: int, col: int) -> int:
        """PE id of mesh position (row, col)."""
        return row * self.cols + col

    def xy_route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Directed links of the X-Y route from ``src`` to ``dst``.

        The route first travels along the row (X direction), then along the
        column (Y direction).  The injection link from the global buffer into
        router (0, 0) is represented by the pair ``(GLOBAL_BUFFER_NODE, 0)``.
        """
        links: list[tuple[int, int]] = []
        if src == GLOBAL_BUFFER_NODE:
            links.append((GLOBAL_BUFFER_NODE, self.node_id(0, 0)))
            src = self.node_id(0, 0)
        if dst == GLOBAL_BUFFER_NODE:
            # Route to router (0, 0) first, then eject.
            links.extend(self.xy_route(src, self.node_id(0, 0)))
            links.append((self.node_id(0, 0), GLOBAL_BUFFER_NODE))
            return links
        row_src, col_src = self.coordinates(src)
        row_dst, col_dst = self.coordinates(dst)
        current = src
        step = 1 if col_dst > col_src else -1
        for col in range(col_src + step, col_dst + step, step) if col_src != col_dst else []:
            nxt = self.node_id(row_src, col)
            links.append((current, nxt))
            current = nxt
        step = 1 if row_dst > row_src else -1
        for row in range(row_src + step, row_dst + step, step) if row_src != row_dst else []:
            nxt = self.node_id(row, col_dst)
            links.append((current, nxt))
            current = nxt
        return links

    def multicast_tree(self, src: int, destinations: tuple[int, ...]) -> set[tuple[int, int]]:
        """Union of the X-Y routes to every destination (the multicast tree)."""
        tree: set[tuple[int, int]] = set()
        for dst in destinations:
            tree.update(self.xy_route(src, dst))
        return tree

    # ------------------------------------------------------------------ timing
    def _link(self, key: tuple[int, int]) -> LinkState:
        if key not in self._links:
            self._links[key] = LinkState()
        return self._links[key]

    def reset(self) -> None:
        """Clear all link occupancy (start of a new simulation)."""
        self._links.clear()

    def deliver(self, packet: Packet, start_time: float) -> float:
        """Send ``packet`` at ``start_time`` and return its completion time.

        The packet's flits occupy every link of its route (or multicast tree)
        for ``flits / link_bandwidth`` cycles, starting no earlier than the
        link becomes free; the head flit additionally pays one router latency
        per hop.  Without multicast hardware a multicast packet degenerates
        into independent unicasts.
        """
        flits = max(1, self.noc.flits_for_bytes(packet.payload_bytes))
        serialization = flits / self.noc.link_bandwidth_flits

        if packet.direction is TrafficDirection.DISTRIBUTE:
            source = GLOBAL_BUFFER_NODE
            if packet.is_multicast and not self.noc.multicast:
                return max(
                    self._deliver_over_links(self.xy_route(source, dst), serialization, start_time)
                    for dst in packet.destinations
                )
            links = (
                self.multicast_tree(source, packet.destinations)
                if packet.is_multicast
                else set(self.xy_route(source, packet.destinations[0]))
            )
            return self._deliver_over_links(links, serialization, start_time)

        # Collection: the (single) source PE sends toward the global buffer.
        source_pe = packet.destinations[0]
        return self._deliver_over_links(self.xy_route(source_pe, GLOBAL_BUFFER_NODE), serialization, start_time)

    def _deliver_over_links(self, links, serialization: float, start_time: float) -> float:
        completion = start_time
        hop_latency = self.noc.router_latency
        for key in links:
            link = self._link(key)
            begin = max(link.free_at, start_time)
            end = begin + serialization
            link.free_at = end
            link.busy_cycles += serialization
            completion = max(completion, end + hop_latency)
        return completion

    # ------------------------------------------------------------------ stats
    def max_link_busy_cycles(self) -> float:
        """Busy cycles of the most-loaded link (congestion indicator)."""
        if not self._links:
            return 0.0
        return max(state.busy_cycles for state in self._links.values())

    def total_link_cycles(self) -> float:
        """Sum of busy cycles over every link (energy/traffic proxy)."""
        return sum(state.busy_cycles for state in self._links.values())
