"""Packets exchanged over the mesh."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.workloads.layer import TensorKind


class TrafficDirection(Enum):
    """Direction of a transfer relative to the global buffer."""

    DISTRIBUTE = "distribute"  # global buffer -> PEs (weights, inputs, returning partials)
    COLLECT = "collect"        # PEs -> global buffer (outputs / partial sums)


@dataclass(frozen=True)
class Packet:
    """One multicast/unicast transaction.

    Parameters
    ----------
    tensor:
        Which tensor the payload belongs to.
    direction:
        Distribution (GB to PEs) or collection (PEs to GB).
    payload_bytes:
        Payload size of the transaction.
    destinations:
        PE ids receiving the payload (for collection packets this is the
        single source PE).
    """

    tensor: TensorKind
    direction: TrafficDirection
    payload_bytes: float
    destinations: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if not self.destinations:
            raise ValueError("a packet needs at least one destination")

    @property
    def is_multicast(self) -> bool:
        """True when the packet targets more than one PE."""
        return len(self.destinations) > 1
