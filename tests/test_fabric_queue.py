"""Unit tests for the fabric work queue: claims, leases, reclaim, dedup.

Everything here drives :class:`repro.fabric.queue.WorkQueue` directly with
toy specs — no scheduler ever runs — so the coordination invariants (atomic
claim, lease expiry and dead-lettering, single-flight leadership, weighted
priority, journal crash-tolerance) are tested in milliseconds.
"""

import json
import threading

import pytest

from repro.fabric.queue import Claim, TaskState, WorkQueue
from repro.io_utils import append_ndjson, read_ndjson

SPEC = {"kind": "schedule", "workload": {"layers": ["3_4_8_16_1"]}}


def enqueue(queue, fingerprint="f" * 40, job_id="job-000001-abc", **kwargs):
    kwargs.setdefault("store_root", str(queue.root.parent / "store"))
    return queue.enqueue(SPEC, fingerprint, job_id=job_id, **kwargs)


class TestLifecycle:
    def test_enqueue_claim_complete_roundtrip(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        task = enqueue(queue)
        assert task["state"] == TaskState.PENDING
        assert task["attempts"] == 0

        claim = queue.claim("w1")
        assert claim is not None
        assert claim.task_id == task["task_id"]
        assert claim.task["state"] == TaskState.RUNNING
        assert claim.task["attempts"] == 1
        assert claim.lease_path.exists()

        assert queue.complete(claim, store_hit=False) is True
        final = queue.load_task(task["task_id"])
        assert final["state"] == TaskState.DONE
        assert not claim.lease_path.exists()
        events = [line["event"] for line in queue.read_journal()]
        assert events == ["enqueued", "claimed", "completed"]

    def test_claim_returns_none_on_empty_queue(self, tmp_path):
        assert WorkQueue(tmp_path / "fabric").claim("w1") is None

    def test_lease_arbitration_prevents_double_claim(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        enqueue(queue)
        first = queue.claim("w1")
        assert first is not None
        # The task is leased: a second worker (even via a fresh queue
        # instance, i.e. another process) sees nothing claimable.
        other = WorkQueue(tmp_path / "fabric")
        assert other.claim("w2") is None

    def test_concurrent_claims_hand_out_each_task_once(self, tmp_path):
        queue_path = tmp_path / "fabric"
        setup = WorkQueue(queue_path)
        for index in range(8):
            enqueue(setup, fingerprint=f"{index:040d}", job_id=f"job-{index:06d}-x")
        claimed, lock = [], threading.Lock()

        def drain(worker_id):
            queue = WorkQueue(queue_path)
            while True:
                claim = queue.claim(worker_id)
                if claim is None:
                    return
                with lock:
                    claimed.append(claim.task_id)
                queue.complete(claim)

        threads = [
            threading.Thread(target=drain, args=(f"w{n}",)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == sorted(set(claimed))
        assert len(claimed) == 8

    def test_fail_records_error_and_settles(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        task = enqueue(queue)
        claim = queue.claim("w1")
        assert queue.fail(claim, ValueError("boom")) is True
        final = queue.load_task(task["task_id"])
        assert final["state"] == TaskState.FAILED
        assert final["error"] == {"type": "ValueError", "message": "boom"}

    def test_release_returns_task_without_a_strike(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        task = enqueue(queue)
        claim = queue.claim("w1")
        assert claim.task["attempts"] == 1
        assert queue.release(claim) is True
        restored = queue.load_task(task["task_id"])
        assert restored["state"] == TaskState.PENDING
        assert restored["attempts"] == 0  # a graceful release is not a strike
        # And it is immediately claimable again.
        again = queue.claim("w2")
        assert again is not None and again.task_id == task["task_id"]


class TestLeases:
    def test_heartbeat_extends_deadline(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric", lease_ttl=5.0)
        enqueue(queue)
        claim = queue.claim("w1")
        before = json.loads(claim.lease_path.read_text())["deadline"]
        assert queue.heartbeat(claim) is True
        after = json.loads(claim.lease_path.read_text())["deadline"]
        assert after >= before

    def test_expired_lease_is_reclaimed_to_pending(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric", lease_ttl=0.01)
        task = enqueue(queue)
        claim = queue.claim("w1")
        import time

        time.sleep(0.05)
        assert queue.reclaim_expired(sweeper="test") == [task["task_id"]]
        restored = queue.load_task(task["task_id"])
        assert restored["state"] == TaskState.PENDING
        assert restored["attempts"] == 1  # the crashed attempt counts
        # The demoted claim can no longer renew or complete.
        assert queue.heartbeat(claim) is False
        assert queue.complete(claim) is False
        assert queue.load_task(task["task_id"])["state"] == TaskState.PENDING

    def test_unexpired_lease_survives_a_sweep(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric", lease_ttl=60.0)
        enqueue(queue)
        claim = queue.claim("w1")
        assert queue.reclaim_expired(sweeper="test") == []
        assert claim.lease_path.exists()
        assert queue.heartbeat(claim) is True

    def test_dead_letter_after_max_attempts(self, tmp_path):
        import time

        queue = WorkQueue(tmp_path / "fabric", lease_ttl=0.01, max_attempts=2)
        task = enqueue(queue)
        for _ in range(2):
            claim = queue.claim("w1")
            assert claim is not None
            time.sleep(0.05)
            queue.reclaim_expired(sweeper="test")
        final = queue.load_task(task["task_id"])
        assert final["state"] == TaskState.DEAD
        assert final["error"]["type"] == "LeaseExpired"
        assert queue.claim("w2") is None  # dead tasks are never re-dispatched
        assert "dead" in [line["event"] for line in queue.read_journal()]

    def test_stale_lease_of_a_done_task_is_swept(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric", lease_ttl=0.01)
        task = enqueue(queue)
        claim = queue.claim("w1")
        queue.complete(claim)
        # Forge a leftover lease (e.g. a crash after the terminal write).
        queue.lease_path(task["task_id"]).write_text(
            json.dumps({"worker": "w1", "token": "t", "deadline": 0}) + "\n"
        )
        queue.reclaim_expired(sweeper="test")
        assert not queue.lease_path(task["task_id"]).exists()
        assert queue.load_task(task["task_id"])["state"] == TaskState.DONE


class TestCancellation:
    def test_cancel_pending_task(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        task = enqueue(queue)
        assert queue.cancel(task["task_id"]) is True
        assert queue.load_task(task["task_id"])["state"] == TaskState.CANCELLED
        assert queue.claim("w1") is None

    def test_cancel_loses_to_an_executing_worker(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        task = enqueue(queue)
        claim = queue.claim("w1")
        assert queue.cancel(task["task_id"]) is False
        assert queue.complete(claim) is True  # the worker still owns it

    def test_claim_lost_to_a_concurrent_cancel_is_void(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        task = enqueue(queue)
        record = queue.load_task(task["task_id"])
        record["state"] = TaskState.CANCELLED
        queue._write_task(record)
        assert queue.claim("w1") is None


class TestPriority:
    def test_interactive_overtakes_batch(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        batch = enqueue(queue, fingerprint="b" * 40, priority="batch")
        interactive = enqueue(queue, fingerprint="i" * 40, priority="interactive")
        first = queue.claim("w1")
        assert first.task_id == interactive["task_id"]
        second = queue.claim("w1")
        assert second.task_id == batch["task_id"]

    def test_batch_is_served_after_interactive_weight_claims(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric", interactive_weight=2)
        for index in range(4):
            enqueue(queue, fingerprint=f"aa{index:038d}", priority="interactive")
        batch = enqueue(queue, fingerprint="b" * 40, priority="batch")
        order = []
        for _ in range(5):
            claim = queue.claim("w1")
            order.append(claim.task_id)
            queue.complete(claim)
        # Two interactive claims, then the batch task is served (no
        # starvation), then the remaining interactive backlog.
        assert order[2] == batch["task_id"]


class TestSingleFlight:
    def test_followers_wait_for_their_leader(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        leader = enqueue(queue, fingerprint="c" * 40, job_id="job-000001-abc")
        follower = enqueue(queue, fingerprint="c" * 40, job_id="job-000002-abc")
        assert leader["leader"] is None
        assert follower["leader"] == leader["task_id"]

        claim = queue.claim("w1")
        assert claim.task_id == leader["task_id"]
        # While the leader runs the follower stays unclaimable.
        assert queue.claim("w2") is None
        queue.complete(claim)
        # Leader terminal: the follower is released for (store-hit) pickup.
        second = queue.claim("w2")
        assert second is not None and second.task_id == follower["task_id"]

    def test_distinct_fingerprints_do_not_single_flight(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        first = enqueue(queue, fingerprint="d" * 40)
        second = enqueue(queue, fingerprint="e" * 40)
        assert first["leader"] is None and second["leader"] is None

    def test_flight_index_reopens_after_settlement(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        leader = enqueue(queue, fingerprint="c" * 40)
        queue.complete(queue.claim("w1"))
        # The flight settled: a later identical enqueue leads a new flight
        # (and will hit the shared store instead of re-executing).
        fresh = enqueue(queue, fingerprint="c" * 40, job_id="job-000003-abc")
        assert fresh["leader"] is None
        assert leader["task_id"] != fresh["task_id"]


class TestJournal:
    def test_torn_tail_line_is_skipped(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        enqueue(queue)
        with open(queue.journal_path, "a") as handle:
            handle.write('{"ts": 1.0, "event": "clai')  # killed mid-append
        lines = queue.read_journal()
        assert [line["event"] for line in lines] == ["enqueued"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        append_ndjson(path, {"event": "a"})
        with open(path, "a") as handle:
            handle.write("not json\n")
        append_ndjson(path, {"event": "b"})
        with pytest.raises(ValueError):
            read_ndjson(path)

    def test_validation_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, lease_ttl=0)
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, max_attempts=0)
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, interactive_weight=0)

    def test_stats_counts_states_and_lanes(self, tmp_path):
        queue = WorkQueue(tmp_path / "fabric")
        enqueue(queue, fingerprint="a" * 40, priority="batch")
        enqueue(queue, fingerprint="b" * 40)
        running = enqueue(queue, fingerprint="c" * 40)
        claim = queue.claim("w1")  # claims the first interactive task
        stats = queue.stats()
        assert stats["by_state"] == {"pending": 2, "running": 1}
        assert stats["pending_by_lane"] == {"interactive": 1, "batch": 1}
        assert stats["leases"] == 1
        del running, claim
