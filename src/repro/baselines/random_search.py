"""Random-search baseline ("Random (5x)" in the paper).

The paper's Random scheduler draws random points of the scheduling space
until five valid schedules have been found (20 K draws yielded only five
valid ones in their measurement) and keeps the best of those five under the
target metric.

The search runs a propose-batch/evaluate-batch loop: candidates are drawn in
chunks of ``eval_batch_size`` as factor matrices
(:meth:`~repro.mapping.space.MapSpace.sample_batch`) and scored by the
vectorized :class:`~repro.model.batch.BatchCostModel`; with batching off (or
numpy unavailable) the chunk size is 1 and each draw goes through the scalar
:class:`~repro.model.cost.CostModel`.  Both paths see the identical
candidate stream, so the outcome does not depend on the batch size.
"""

from __future__ import annotations

import random
import time

from repro.arch.accelerator import Accelerator
from repro.baselines.base import SearchResult, SearchScheduler, stable_layer_seed
from repro.mapping.space import MapSpace
from repro.model.cost import CostModel
from repro.workloads.layer import Layer


class RandomScheduler(SearchScheduler):
    """Best-of-N random valid schedules.

    Parameters
    ----------
    accelerator:
        Target architecture.
    num_valid:
        How many valid schedules to collect before stopping (5 in the paper).
    max_attempts:
        Upper bound on random draws per layer.
    metric:
        ``"latency"``, ``"energy"`` or ``"edp"``.
    seed:
        Base seed; each layer perturbs it with a content hash of its name so
        results are deterministic but layers are decorrelated.
    eval_batch_size / time_budget_seconds:
        See :class:`~repro.baselines.base.SearchScheduler`.  With a wall
        clock budget set, the budget is checked once per proposed chunk.
    """

    name = "random"

    def __init__(
        self,
        accelerator: Accelerator,
        num_valid: int = 5,
        max_attempts: int = 20_000,
        metric: str = "latency",
        seed: int = 0,
        eval_batch_size: int | None = None,
        time_budget_seconds: float | None = None,
        kernel_backend: str | None = None,
    ):
        super().__init__(
            metric,
            eval_batch_size=eval_batch_size,
            time_budget_seconds=time_budget_seconds,
            kernel_backend=kernel_backend,
        )
        self.accelerator = accelerator
        self.num_valid = num_valid
        self.max_attempts = max_attempts
        self.seed = seed
        self._cost_model = CostModel(accelerator)

    def _config(self) -> dict:
        return {
            **super()._config(),
            "num_valid": self.num_valid,
            "max_attempts": self.max_attempts,
            "seed": self.seed,
        }

    def schedule(self, layer: Layer) -> SearchResult:
        """Search for the best of ``num_valid`` random valid schedules of ``layer``."""
        start = time.perf_counter()
        deadline = self._deadline(start)
        rng = random.Random(stable_layer_seed(self.seed, layer.canonical_name))
        space = MapSpace(layer, self.accelerator)
        chunk = self.eval_batch_size if self.batching_enabled else 1

        best_draws = None
        best_index = -1
        best_score = float("inf")
        sampled = 0
        evaluated = 0
        while (
            evaluated < self.num_valid
            and sampled < self.max_attempts
            and not self._out_of_time(deadline)
        ):
            draws = space.sample_batch(min(chunk, self.max_attempts - sampled), rng)
            valid, scores = self._score_draws(draws)
            for i in range(len(draws)):
                sampled += 1
                if not valid[i]:
                    continue
                evaluated += 1
                if scores[i] < best_score:
                    best_draws, best_index, best_score = draws, i, float(scores[i])
                if evaluated >= self.num_valid:
                    break
        best_mapping = best_draws.materialize(best_index) if best_draws is not None else None
        best_cost = self._cost_model.evaluate(best_mapping) if best_mapping is not None else None
        return SearchResult(
            mapping=best_mapping,
            cost=best_cost,
            num_sampled=sampled,
            num_evaluated=evaluated,
            elapsed_seconds=time.perf_counter() - start,
        )

    def schedule_network(self, layers) -> list[SearchResult]:
        """Schedule every layer of a network independently."""
        return [self.schedule(layer) for layer in layers]
